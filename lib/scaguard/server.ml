(* The resident streaming detection daemon behind `scaguard serve`.

   Layering (bottom up): Json (strict parse + compact print), Framer
   (newline framing with a hard line ceiling), the protocol types
   (parse_request / frame builders), then the server core — a bounded
   request queue drained by a single thread, so requests execute strictly
   in arrival order and `reload` can never race an in-flight detection.
   The transports (stdio / Unix socket / TCP) are thin pump loops over
   connect/feed/step.  docs/SERVER.md is the normative wire spec; keep the
   two in lockstep. *)

(* ---- JSON ------------------------------------------------------------------- *)

(* The strict JSON layer lives in its own module now (Log and Provenance
   share it); the alias keeps [Server.Json] working for every existing
   protocol consumer. *)
module Json = Json

(* ---- framing ---------------------------------------------------------------- *)

module Framer = struct
  type frame = Line of string | Overflow of { dropped : int }

  type t = {
    max_line : int;
    buf : Buffer.t;
    mutable skipping : bool;  (* discarding an oversized line until '\n' *)
    mutable skipped : int;
  }

  let create ?(max_line = 1 lsl 20) () =
    if max_line < 1 then
      invalid_arg (Printf.sprintf "Framer.create: max_line %d < 1" max_line);
    { max_line; buf = Buffer.create 256; skipping = false; skipped = 0 }

  let buffered t = Buffer.length t.buf

  let strip_cr s =
    let l = String.length s in
    if l > 0 && s.[l - 1] = '\r' then String.sub s 0 (l - 1) else s

  let feed t chunk =
    let frames = ref [] in
    String.iter
      (fun c ->
        if t.skipping then
          if c = '\n' then begin
            frames := Overflow { dropped = t.skipped } :: !frames;
            t.skipping <- false;
            t.skipped <- 0
          end
          else t.skipped <- t.skipped + 1
        else if c = '\n' then begin
          frames := Line (strip_cr (Buffer.contents t.buf)) :: !frames;
          Buffer.clear t.buf
        end
        else begin
          Buffer.add_char t.buf c;
          if Buffer.length t.buf > t.max_line then begin
            t.skipped <- Buffer.length t.buf;
            Buffer.clear t.buf;
            t.skipping <- true
          end
        end)
      chunk;
    List.rev !frames

  let eof t =
    if t.skipping then begin
      let dropped = t.skipped in
      t.skipping <- false;
      t.skipped <- 0;
      Some (Overflow { dropped })
    end
    else if Buffer.length t.buf > 0 then begin
      let line = strip_cr (Buffer.contents t.buf) in
      Buffer.clear t.buf;
      Some (Line line)
    end
    else None
end

(* ---- protocol --------------------------------------------------------------- *)

type error_code =
  | Parse_error
  | Bad_request
  | Invalid_config
  | Io
  | Empty_repository
  | Busy
  | Deadline
  | Unavailable
  | Internal

let error_code_to_string = function
  | Parse_error -> "parse"
  | Bad_request -> "bad_request"
  | Invalid_config -> "invalid_config"
  | Io -> "io"
  | Empty_repository -> "empty_repository"
  | Busy -> "busy"
  | Deadline -> "deadline"
  | Unavailable -> "unavailable"
  | Internal -> "internal"

let error_code_of_err = function
  | Err.Parse _ -> Parse_error
  | Err.Io _ -> Io
  | Err.Invalid_config _ -> Invalid_config
  | Err.Empty_repository -> Empty_repository

type request_body =
  | Detect of { targets : string list; seed : int; stream : bool }
  | Screen of { targets : string list; seed : int }
  | Explain of { targets : string list; seed : int }
  | Stats
  | Metrics
  | Reload of { path : string option }
  | Ping
  | Shutdown

type request = {
  id : Json.t;
  body : request_body;
  deadline_ms : int option;
  trace_id : string option;
      (* client-chosen correlation token: echoed in every frame this
         request produces and stamped on spans, log events and provenance
         records while it executes *)
}

let verb = function
  | Detect _ -> "detect"
  | Screen _ -> "screen"
  | Explain _ -> "explain"
  | Stats -> "stats"
  | Metrics -> "metrics"
  | Reload _ -> "reload"
  | Ping -> "ping"
  | Shutdown -> "shutdown"

type reject = {
  reject_id : Json.t;
  code : error_code;
  message : string;
  reject_trace : string option;
      (* echoed when the envelope got far enough to carry one *)
}

let default_seed = 2026

(* ids must survive the echo exactly, so only integral numbers (within the
   float53 exact range) and strings qualify *)
let integral f = Float.is_integer f && Float.abs f <= 9007199254740992.0

let parse_request line =
  match Json.parse line with
  | Error msg ->
    Error
      {
        reject_id = Json.Null;
        code = Parse_error;
        message = "invalid JSON: " ^ msg;
        reject_trace = None;
      }
  | Ok (Json.Obj _ as j) -> begin
    (* the trace id is best-effort on rejects: a well-typed one is echoed
       even when a later field is bad, so clients can correlate failures *)
    let trace_id =
      match Json.member "trace_id" j with
      | Some (Json.Str s) -> Some s
      | _ -> None
    in
    let id_res =
      match Json.member "id" j with
      | Some (Json.Num f) when integral f -> Ok (Json.Num f)
      | Some (Json.Str s) -> Ok (Json.Str s)
      | Some _ -> Error "\"id\" must be an integer or a string"
      | None -> Error "missing \"id\""
    in
    match id_res with
    | Error message ->
      Error
        {
          reject_id = Json.Null;
          code = Bad_request;
          message;
          reject_trace = trace_id;
        }
    | Ok id -> begin
      let ( let* ) r f =
        match r with
        | Ok v -> f v
        | Error message ->
          Error
            { reject_id = id; code = Bad_request; message; reject_trace = trace_id }
      in
      let ( let& ) = Result.bind in
      let int_field key =
        match Json.member key j with
        | None -> Ok None
        | Some (Json.Num f) when integral f -> Ok (Some (int_of_float f))
        | Some _ -> Error (Printf.sprintf "%S must be an integer" key)
      in
      let* op =
        match Json.member "op" j with
        | Some (Json.Str s) -> Ok s
        | Some _ -> Error "\"op\" must be a string"
        | None -> Error "missing \"op\""
      in
      let* deadline_ms =
        match int_field "deadline_ms" with
        | Ok (Some d) when d < 0 ->
          Error "\"deadline_ms\" must be a non-negative integer"
        | r -> r
      in
      let* seed =
        Result.map (Option.value ~default:default_seed) (int_field "seed")
      in
      let targets () =
        match Json.member "targets" j with
        | Some (Json.List (_ :: _ as l)) ->
          let rec strings acc = function
            | [] -> Ok (List.rev acc)
            | Json.Str s :: rest -> strings (s :: acc) rest
            | _ -> Error "\"targets\" must be a non-empty array of strings"
          in
          strings [] l
        | Some _ | None -> Error "\"targets\" must be a non-empty array of strings"
      in
      let* trace_id =
        match Json.member "trace_id" j with
        | None -> Ok None
        | Some (Json.Str s) -> Ok (Some s)
        | Some _ -> Error "\"trace_id\" must be a string"
      in
      let* body =
        match op with
        | "detect" ->
          let& targets = targets () in
          let& stream =
            match Json.member "stream" j with
            | None -> Ok true
            | Some (Json.Bool v) -> Ok v
            | Some _ -> Error "\"stream\" must be a boolean"
          in
          Ok (Detect { targets; seed; stream })
        | "screen" ->
          let& targets = targets () in
          Ok (Screen { targets; seed })
        | "explain" ->
          let& targets = targets () in
          Ok (Explain { targets; seed })
        | "stats" -> Ok Stats
        | "metrics" -> Ok Metrics
        | "reload" ->
          let& path =
            match Json.member "path" j with
            | None -> Ok None
            | Some (Json.Str s) -> Ok (Some s)
            | Some _ -> Error "\"path\" must be a string"
          in
          Ok (Reload { path })
        | "ping" -> Ok Ping
        | "shutdown" -> Ok Shutdown
        | other ->
          Error
            (Printf.sprintf
               "unknown op %S: expected detect, screen, explain, stats, \
                metrics, reload, ping or shutdown"
               other)
      in
      Ok { id; body; deadline_ms; trace_id }
    end
  end
  | Ok _ ->
    Error
      {
        reject_id = Json.Null;
        code = Bad_request;
        message = "request must be a JSON object";
        reject_trace = None;
      }

(* ---- server core ------------------------------------------------------------- *)

type resolve = seed:int -> string -> (Pipeline.job, Err.t) result

type conn = {
  cid : int;
  framer : Framer.t;
  mutable emit : (string -> unit) option;
}

type item = {
  iconn : conn;
  req : request;
  arrival_ns : int64;
  deadline : Sutil.Deadline.t;
}

(* Per-request latencies for the stats verb's exact quantiles: a ring of the
   last [lat_window] request durations (seconds). *)
let lat_window = 4096

type t = {
  config : Config.t;
  resolve : resolve;
  mutable prepared : Detector.prepared;
  mutable repo_path : string option;
  queue : item Sutil.Bqueue.t;
  max_line : int;
  default_deadline_ms : int;
  start_ns : int64;
  mutable served_ : int;
  mutable built : int;
  mutable reloads : int;
  by_op : (string, int ref) Hashtbl.t;
  rejected : (string, int ref) Hashtbl.t;
  mutable eng_targets : int;
  mutable eng_pairs : int;
  mutable eng_cells : int;
  mutable eng_pruned_lb : int;
  mutable eng_abandoned : int;
  mutable eng_cells_saved : int;
  mutable eng_lb_evals : int;
  mutable eng_pruned_index : int;
  mutable eng_nodes_visited : int;
  lat : float array;
  mutable lat_n : int;
  mutable draining_ : bool;
  mutable acks : (conn * Json.t) list;  (* shutdown acks owed at drain end *)
  mutable next_cid : int;
}

let ( let* ) = Result.bind

let create ~config ~resolve ~prepared ?repo_path ?(queue_capacity = 64)
    ?(max_line = 1 lsl 20) ?(default_deadline_ms = 0) () =
  let* config = Config.validate config in
  let knob field value expected =
    Error (Err.Invalid_config { field; value = string_of_int value; expected })
  in
  if Detector.prepared_size prepared = 0 then Error Err.Empty_repository
  else if queue_capacity < 1 then
    knob "queue_capacity" queue_capacity "a positive request count"
  else if max_line < 1 then knob "max_line" max_line "a positive byte count"
  else if default_deadline_ms < 0 then
    knob "default_deadline_ms" default_deadline_ms
      "a non-negative millisecond count (0 = no deadline)"
  else
    Ok
      {
        config;
        resolve;
        prepared;
        repo_path;
        queue = Sutil.Bqueue.create ~capacity:queue_capacity;
        max_line;
        default_deadline_ms;
        start_ns = Obs.Clock.now_ns ();
        served_ = 0;
        built = 0;
        reloads = 0;
        by_op = Hashtbl.create 8;
        rejected = Hashtbl.create 8;
        eng_targets = 0;
        eng_pairs = 0;
        eng_cells = 0;
        eng_pruned_lb = 0;
        eng_abandoned = 0;
        eng_cells_saved = 0;
        eng_lb_evals = 0;
        eng_pruned_index = 0;
        eng_nodes_visited = 0;
        lat = Array.make lat_window 0.0;
        lat_n = 0;
        draining_ = false;
        acks = [];
        next_cid = 0;
      }

let pending t = Sutil.Bqueue.length t.queue
let draining t = t.draining_
let served t = t.served_
let uptime_s t = Obs.Clock.elapsed_s ~since:t.start_ns

let connect t ~emit =
  let cid = t.next_cid in
  t.next_cid <- cid + 1;
  { cid; framer = Framer.create ~max_line:t.max_line (); emit = Some emit }

let disconnect _t conn = conn.emit <- None

(* ---- frame builders ----- *)

let jint i = Json.Num (float_of_int i)

(* The trace echo rides on every frame's tail, appended at emission time so
   the frame builders stay trace-agnostic. *)
let stamp_trace trace json =
  match (trace, json) with
  | Some tr, Json.Obj kvs -> Json.Obj (kvs @ [ ("trace_id", Json.Str tr) ])
  | _ -> json

let emit_frame ?trace conn json =
  match conn.emit with
  | None -> ()
  | Some f -> f (Json.to_string (stamp_trace trace json))

let frame_error ?(extras = []) ~id code message =
  Json.Obj
    ([
       ("id", id);
       ("ok", Json.Bool false);
       ( "error",
         Json.Obj
           [
             ("code", Json.Str (error_code_to_string code));
             ("message", Json.Str message);
           ] );
     ]
    @ extras)

let verdict_frame ~id ~target (v : Detector.verdict) =
  Json.Obj
    [
      ("id", id);
      ("event", Json.Str "verdict");
      ("target", Json.Str target);
      ("attack", Json.Bool (v.Detector.best_family <> None));
      ( "family",
        match v.Detector.best_family with
        | Some f -> Json.Str f
        | None -> Json.Null );
      ("score", Json.Num v.Detector.best_score);
      ( "matches",
        Json.List
          (List.map
             (fun (poc, family, score) ->
               Json.Obj
                 [
                   ("poc", Json.Str poc);
                   ("family", Json.Str family);
                   ("score", Json.Num score);
                 ])
             v.Detector.best_matches) );
    ]

(* ---- counters ----- *)

let bump tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> incr r
  | None -> Hashtbl.add tbl key (ref 1)

let set_queue_gauge t =
  if Obs.metrics () then
    Obs.Registry.set_gauge Obs.Metrics.server_queue_depth
      (float_of_int (Sutil.Bqueue.length t.queue))

let note_rejected t reason =
  bump t.rejected reason;
  if Obs.metrics () then
    Obs.Registry.incr (Obs.Metrics.server_rejected_total ~reason)

let accumulate t (report : Service.report) =
  t.built <- t.built + report.Service.built;
  match report.Service.engine with
  | None -> ()
  | Some (s : Engine.stats) ->
    t.eng_targets <- t.eng_targets + s.Engine.targets;
    t.eng_pairs <- t.eng_pairs + s.Engine.pairs;
    t.eng_cells <- t.eng_cells + s.Engine.cells;
    t.eng_pruned_lb <- t.eng_pruned_lb + s.Engine.pairs_pruned_lb;
    t.eng_abandoned <- t.eng_abandoned + s.Engine.pairs_abandoned;
    t.eng_cells_saved <- t.eng_cells_saved + s.Engine.cells_saved;
    t.eng_lb_evals <- t.eng_lb_evals + s.Engine.lb_evals;
    t.eng_pruned_index <- t.eng_pruned_index + s.Engine.pairs_pruned_index;
    t.eng_nodes_visited <- t.eng_nodes_visited + s.Engine.nodes_visited

(* ---- request execution ----- *)

(* The CLI's salt policy, replicated so serve verdicts reproduce
   detect-batch's bit for bit: a CLI-derived salt never clobbers one the
   operator set in the config. *)
let salted t seed =
  if t.config.Config.salt = "" then
    { t.config with Config.salt = string_of_int seed }
  else t.config

let err_frame ?extras ~id e = frame_error ?extras ~id (error_code_of_err e) (Err.to_string e)

let wall_ms ~arrival_ns =
  Int64.to_float (Obs.Clock.elapsed_ns ~since:arrival_ns) /. 1e6

let resolve_all t ~seed targets =
  let rec go acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | name :: rest -> (
      match t.resolve ~seed name with
      | Ok job -> go (job :: acc) rest
      | Error e -> Error (name, e))
  in
  go [] targets

let do_detect t conn ?trace ~id ~arrival_ns ~deadline ~targets ~seed ~stream ()
    =
  let config = salted t seed in
  let total = List.length targets in
  let attacks = ref 0 in
  let emit_verdict target v =
    if v.Detector.best_family <> None then incr attacks;
    emit_frame ?trace conn (verdict_frame ~id ~target v);
    if Obs.metrics () then
      Obs.Registry.incr Obs.Metrics.server_streamed_verdicts_total
  in
  let progress completed =
    [ ("completed", jint completed); ("targets", jint total) ]
  in
  let finish completed =
    emit_frame ?trace conn
      (Json.Obj
         [
           ("id", id);
           ("ok", Json.Bool true);
           ("op", Json.Str "detect");
           ("targets", jint total);
           ("completed", jint completed);
           ("attacks", jint !attacks);
           ("wall_ms", Json.Num (wall_ms ~arrival_ns));
         ])
  in
  if stream then begin
    (* One engine run per target so each verdict streams out the moment it
       is ready, with a cancellation point between targets.  Per-target
       batches are bit-identical to one big batch (the engine's standing
       sequential-identity invariant), so streaming costs no fidelity. *)
    let rec go completed = function
      | [] -> finish completed
      | name :: rest ->
        if Sutil.Deadline.expired ~now_ns:(Obs.Clock.now_ns ()) deadline then
          emit_frame ?trace conn
            (frame_error ~extras:(progress completed) ~id Deadline
               (Printf.sprintf
                  "deadline expired after %d of %d targets: remaining targets \
                   cancelled"
                  completed total))
        else begin
          match t.resolve ~seed name with
          | Error e ->
            emit_frame ?trace conn (err_frame ~extras:(progress completed) ~id e)
          | Ok job -> (
            match Service.screen_prepared config t.prepared [| job |] with
            | Error e ->
              emit_frame ?trace conn
                (err_frame ~extras:(progress completed) ~id e)
            | Ok (_models, verdicts, report) ->
              accumulate t report;
              emit_verdict name verdicts.(0);
              go (completed + 1) rest)
        end
    in
    go 0 targets
  end
  else begin
    (* Unstreamed: the whole batch fans over the parallel engine; one
       deadline check up front (the batch is not interruptible). *)
    match resolve_all t ~seed targets with
    | Error (name, e) ->
      emit_frame ?trace conn
        (err_frame ~extras:(("target", Json.Str name) :: progress 0) ~id e)
    | Ok jobs -> (
      match Service.screen_prepared config t.prepared jobs with
      | Error e -> emit_frame ?trace conn (err_frame ~extras:(progress 0) ~id e)
      | Ok (_models, verdicts, report) ->
        accumulate t report;
        List.iteri (fun i name -> emit_verdict name verdicts.(i)) targets;
        finish total)
  end

let do_screen t conn ?trace ~id ~arrival_ns ~targets ~seed () =
  let config = salted t seed in
  match resolve_all t ~seed targets with
  | Error (name, e) ->
    emit_frame ?trace conn (err_frame ~extras:[ ("target", Json.Str name) ] ~id e)
  | Ok jobs -> (
    match Service.screen_prepared config t.prepared jobs with
    | Error e -> emit_frame ?trace conn (err_frame ~id e)
    | Ok (_models, verdicts, report) ->
      accumulate t report;
      let attack_targets =
        List.filteri
          (fun i _ -> verdicts.(i).Detector.best_family <> None)
          targets
      in
      emit_frame ?trace conn
        (Json.Obj
           [
             ("id", id);
             ("ok", Json.Bool true);
             ("op", Json.Str "screen");
             ("targets", jint (List.length targets));
             ("attacks", jint (List.length attack_targets));
             ( "attack_targets",
               Json.List (List.map (fun n -> Json.Str n) attack_targets) );
             ("wall_ms", Json.Num (wall_ms ~arrival_ns));
           ]))

let do_explain t conn ?trace ~id ~arrival_ns ~targets ~seed () =
  let config = salted t seed in
  match resolve_all t ~seed targets with
  | Error (name, e) ->
    emit_frame ?trace conn (err_frame ~extras:[ ("target", Json.Str name) ] ~id e)
  | Ok jobs -> (
    (* same screen_prepared run (bit-identical verdicts — capture is pure
       observation), plus one provenance record per target *)
    match Service.explain config t.prepared jobs with
    | Error e -> emit_frame ?trace conn (err_frame ~id e)
    | Ok (_models, verdicts, report, records) ->
      accumulate t report;
      let attacks =
        Array.fold_left
          (fun n v -> if v.Detector.best_family <> None then n + 1 else n)
          0 verdicts
      in
      emit_frame ?trace conn
        (Json.Obj
           [
             ("id", id);
             ("ok", Json.Bool true);
             ("op", Json.Str "explain");
             ("targets", jint (List.length targets));
             ("attacks", jint attacks);
             ("records", Json.List (List.map Provenance.to_json records));
             ("wall_ms", Json.Num (wall_ms ~arrival_ns));
           ]))

let stats_frame t ~id =
  let sorted tbl =
    List.sort compare (Hashtbl.fold (fun k r acc -> (k, jint !r) :: acc) tbl [])
  in
  let lats =
    Array.to_list (Array.sub t.lat 0 (min t.lat_n lat_window))
  in
  let pct p = Json.Num (1e3 *. Sutil.Stats.percentile p lats) in
  Json.Obj
    [
      ("id", id);
      ("ok", Json.Bool true);
      ("op", Json.Str "stats");
      ("uptime_s", Json.Num (uptime_s t));
      ( "repository",
        Json.Obj
          [
            ("models", jint (Detector.prepared_size t.prepared));
            ( "path",
              match t.repo_path with Some p -> Json.Str p | None -> Json.Null );
            ("reloads", jint t.reloads);
          ] );
      ( "queue",
        Json.Obj
          [
            ("depth", jint (Sutil.Bqueue.length t.queue));
            ("capacity", jint (Sutil.Bqueue.capacity t.queue));
          ] );
      ( "requests",
        Json.Obj
          [
            ("completed", jint t.served_);
            ("by_op", Json.Obj (sorted t.by_op));
            ("rejected", Json.Obj (sorted t.rejected));
          ] );
      ( "engine",
        Json.Obj
          [
            ("models_built", jint t.built);
            ("targets", jint t.eng_targets);
            ("pairs", jint t.eng_pairs);
            ("cells", jint t.eng_cells);
            ("pairs_pruned_lb", jint t.eng_pruned_lb);
            ("pairs_abandoned", jint t.eng_abandoned);
            ("cells_saved", jint t.eng_cells_saved);
            ("lb_evals", jint t.eng_lb_evals);
            ("pairs_pruned_index", jint t.eng_pruned_index);
            ("index_nodes_visited", jint t.eng_nodes_visited);
          ] );
      ( "latency_ms",
        Json.Obj
          [
            ("count", jint t.lat_n);
            ("window", jint (min t.lat_n lat_window));
            ("p50", pct 0.50);
            ("p90", pct 0.90);
            ("p99", pct 0.99);
            ("max", Json.Num (1e3 *. Sutil.Stats.maximum lats));
          ] );
    ]

let metrics_frame t ~id =
  set_queue_gauge t;
  (* fresh uptime for live scrapes; the build_info identity gauge is a
     constant the front-end stamps at start-up *)
  Obs.Registry.set_gauge Obs.Metrics.uptime_seconds (uptime_s t);
  let body = Obs.Registry.to_prometheus (Obs.snapshot ()) in
  Json.Obj
    [
      ("id", id);
      ("ok", Json.Bool true);
      ("op", Json.Str "metrics");
      ("content_type", Json.Str "text/plain; version=0.0.4");
      ("body", Json.Str body);
    ]

let do_reload t conn ?trace ~id ~arrival_ns ~path () =
  let path =
    match (path, t.repo_path) with
    | Some p, _ | None, Some p -> Ok p
    | None, None ->
      Error
        (Err.Invalid_config
           {
             field = "path";
             value = "(absent)";
             expected =
               "a repository file path (the server was not started from one)";
           })
  in
  match path with
  | Error e ->
    Log.err "server.reload" e;
    emit_frame ?trace conn (err_frame ~id e)
  | Ok path -> (
    (* loading under the server's config rebuilds the prepared index when
       the file does not carry one, so a reloaded daemon classifies exactly
       like a freshly started one — same candidates, same counters *)
    match Service.load_repository ~config:t.config ~path () with
    | Error e ->
      Log.err "server.reload" e;
      emit_frame ?trace conn (err_frame ~id e)
    | Ok (_repo, prep, _report) ->
      if Detector.prepared_size prep = 0 then begin
        Log.warn "server.reload"
          ~fields:[ ("path", Json.Str path) ]
          "scaguard: %s holds no models: keeping the current repository" path;
        emit_frame ?trace conn
          (frame_error ~id Empty_repository
             (Printf.sprintf
                "%s holds no models: keeping the current repository" path))
      end
      else begin
        (* the swap is the only mutation, and it happens between requests —
           everything queued before this reload already ran on the old
           repository, everything after runs on the new one *)
        t.prepared <- prep;
        t.repo_path <- Some path;
        t.reloads <- t.reloads + 1;
        Log.info "server.reload"
          ~fields:
            [
              ("path", Json.Str path);
              ("models", jint (Detector.prepared_size prep));
            ]
          "scaguard: reloaded %d models from %s"
          (Detector.prepared_size prep) path;
        emit_frame ?trace conn
          (Json.Obj
             [
               ("id", id);
               ("ok", Json.Bool true);
               ("op", Json.Str "reload");
               ("path", Json.Str path);
               ("models", jint (Detector.prepared_size prep));
               ("wall_ms", Json.Num (wall_ms ~arrival_ns));
             ])
      end)

let shutdown_ack t ~id =
  Json.Obj
    [
      ("id", id);
      ("ok", Json.Bool true);
      ("op", Json.Str "shutdown");
      ("served", jint t.served_);
      ("uptime_s", Json.Num (uptime_s t));
    ]

let execute t { iconn; req; arrival_ns; deadline } =
  let trace = req.trace_id in
  let now = Obs.Clock.now_ns () in
  if Sutil.Deadline.expired ~now_ns:now deadline then begin
    emit_frame ?trace iconn
      (frame_error ~id:req.id Deadline
         "deadline expired while the request was queued");
    note_rejected t "deadline"
  end
  else begin
    let op = verb req.body in
    let id = req.id in
    (* the single-drainer discipline makes the ambient trace id race-free:
       nothing else executes while this request does, so every span, log
       event and provenance record emitted in here — the request:<op> span
       included — carries this request's trace *)
    Obs.set_trace_id trace;
    Fun.protect
      ~finally:(fun () -> Obs.set_trace_id None)
      (fun () ->
        (try
           match req.body with
           | Ping ->
             emit_frame ?trace iconn
               (Json.Obj
                  [ ("id", id); ("ok", Json.Bool true); ("op", Json.Str "ping") ])
           | Stats -> emit_frame ?trace iconn (stats_frame t ~id)
           | Metrics -> emit_frame ?trace iconn (metrics_frame t ~id)
           | Reload { path } -> do_reload t iconn ?trace ~id ~arrival_ns ~path ()
           | Shutdown ->
             t.draining_ <- true;
             t.acks <- (iconn, id) :: t.acks
           | Detect { targets; seed; stream } ->
             do_detect t iconn ?trace ~id ~arrival_ns ~deadline ~targets ~seed
               ~stream ()
           | Screen { targets; seed } ->
             do_screen t iconn ?trace ~id ~arrival_ns ~targets ~seed ()
           | Explain { targets; seed } ->
             do_explain t iconn ?trace ~id ~arrival_ns ~targets ~seed ()
         with exn ->
           (* a hostile or buggy request must never take the daemon down *)
           Log.error "server.internal"
             ~fields:[ ("op", Json.Str op); ("id", req.id) ]
             "scaguard: unexpected exception serving %s: %s" op
             (Printexc.to_string exn);
           emit_frame ?trace iconn
             (frame_error ~id Internal
                ("unexpected exception: " ^ Printexc.to_string exn)));
        t.served_ <- t.served_ + 1;
        bump t.by_op op;
        let dur_ns = Obs.Clock.elapsed_ns ~since:arrival_ns in
        let dur_s = Obs.Clock.ns_to_s dur_ns in
        t.lat.(t.lat_n mod lat_window) <- dur_s;
        t.lat_n <- t.lat_n + 1;
        if Obs.metrics () then begin
          Obs.Registry.incr (Obs.Metrics.server_requests_total ~op);
          Obs.Registry.observe (Obs.Metrics.server_request_seconds ~op) dur_s
        end;
        if Obs.tracing () then
          Obs.emit_span ~cat:"server" ~name:("request:" ^ op) ~ts_ns:arrival_ns
            ~dur_ns
            ~args:[ ("op", op); ("id", Json.to_string req.id) ]
            ())
  end

(* ---- feed / step ----- *)

let handle_frame t conn = function
  | Framer.Overflow { dropped } ->
    note_rejected t "parse";
    emit_frame conn
      (frame_error ~id:Json.Null Parse_error
         (Printf.sprintf "frame exceeds %d bytes (%d bytes dropped)" t.max_line
            dropped))
  | Framer.Line "" -> ()  (* blank lines are keepalive noise *)
  | Framer.Line line ->
    if t.draining_ then begin
      (* still parse, purely to echo the id (and trace) back *)
      let id, trace =
        match parse_request line with
        | Ok req -> (req.id, req.trace_id)
        | Error r -> (r.reject_id, r.reject_trace)
      in
      note_rejected t "unavailable";
      emit_frame ?trace conn
        (frame_error ~id Unavailable
           "server is draining after shutdown: request refused")
    end
    else begin
      match parse_request line with
      | Error r ->
        note_rejected t (error_code_to_string r.code);
        emit_frame ?trace:r.reject_trace conn
          (frame_error ~id:r.reject_id r.code r.message)
      | Ok req ->
        let arrival_ns = Obs.Clock.now_ns () in
        let budget_ms = Option.value req.deadline_ms ~default:t.default_deadline_ms in
        let deadline = Sutil.Deadline.after ~now_ns:arrival_ns ~budget_ms in
        let item = { iconn = conn; req; arrival_ns; deadline } in
        if Sutil.Bqueue.push t.queue item then set_queue_gauge t
        else begin
          (* explicit backpressure: the reply goes out now, ahead of all
             queued work, so clients learn to back off immediately *)
          note_rejected t "busy";
          emit_frame ?trace:req.trace_id conn
            (frame_error ~id:req.id Busy
               (Printf.sprintf
                  "request queue full (%d queued, capacity %d): retry later"
                  (Sutil.Bqueue.length t.queue)
                  (Sutil.Bqueue.capacity t.queue)))
        end
    end

let feed t conn chunk =
  List.iter (handle_frame t conn) (Framer.feed conn.framer chunk)

let feed_eof t conn =
  match Framer.eof conn.framer with
  | Some frame -> handle_frame t conn frame
  | None -> ()

let finish_drain t =
  List.iter (fun (conn, id) -> emit_frame conn (shutdown_ack t ~id)) (List.rev t.acks);
  t.acks <- [];
  `Stop

let step t =
  match Sutil.Bqueue.pop t.queue with
  | None -> if t.draining_ then finish_drain t else `Idle
  | Some item ->
    set_queue_gauge t;
    execute t item;
    `Worked

let rec drain t =
  match step t with
  | `Worked -> drain t
  | `Idle -> `Idle
  | `Stop -> `Stop

(* ---- transports -------------------------------------------------------------- *)

type endpoint =
  | Stdio
  | Unix_socket of string
  | Tcp of { host : string; port : int }

let endpoint_to_string = function
  | Stdio -> "stdio"
  | Unix_socket path -> "unix:" ^ path
  | Tcp { host; port } -> Printf.sprintf "tcp:%s:%d" host port

let serve_channels t ~ic ~oc =
  let conn_ref = ref None in
  let emit line =
    try
      output_string oc line;
      output_char oc '\n';
      flush oc
    with Sys_error _ -> Option.iter (fun c -> disconnect t c) !conn_ref
  in
  let conn = connect t ~emit in
  conn_ref := Some conn;
  let buf = Bytes.create 65536 in
  let rec loop () =
    match drain t with
    | `Stop -> Ok ()
    | `Idle -> (
      match input ic buf 0 (Bytes.length buf) with
      | 0 ->
        (* EOF: a trailing unterminated line still gets served, then the
           queue drains and the loop exits *)
        feed_eof t conn;
        (match drain t with `Stop | `Idle -> ());
        Ok ()
      | n ->
        feed t conn (Bytes.sub_string buf 0 n);
        loop ()
      | exception End_of_file ->
        feed_eof t conn;
        (match drain t with `Stop | `Idle -> ());
        Ok ()
      | exception Sys_error msg -> Error (Err.Io { path = "<stdio>"; msg }))
  in
  loop ()

let rec write_all fd s off len =
  if len > 0 then begin
    let n = Unix.write_substring fd s off len in
    write_all fd s (off + n) (len - n)
  end

let serve_listener t listener ~cleanup =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let clients : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let close_client fd =
    (match Hashtbl.find_opt clients fd with
    | Some c -> disconnect t c
    | None -> ());
    Hashtbl.remove clients fd;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let accept_client () =
    match Unix.accept listener with
    | exception Unix.Unix_error _ -> ()
    | fd, _ ->
      let conn_ref = ref None in
      let emit line =
        let s = line ^ "\n" in
        try write_all fd s 0 (String.length s)
        with Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
          (* dead peer: stop emitting, reap the fd *)
          Option.iter (fun c -> disconnect t c) !conn_ref;
          close_client fd
      in
      let conn = connect t ~emit in
      conn_ref := Some conn;
      Hashtbl.replace clients fd conn
  in
  let buf = Bytes.create 65536 in
  let stop = ref false in
  while not !stop do
    let fds = listener :: Hashtbl.fold (fun fd _ acc -> fd :: acc) clients [] in
    (* with work queued (or a drain to finish), poll instead of blocking so
       queued requests keep executing between I/O bursts *)
    let timeout = if pending t > 0 || draining t then 0.0 else 0.5 in
    (match Unix.select fds [] [] timeout with
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | ready, _, _ ->
      List.iter
        (fun fd ->
          if fd == listener then accept_client ()
          else
            match Unix.read fd buf 0 (Bytes.length buf) with
            | 0 -> close_client fd
            | n -> (
              match Hashtbl.find_opt clients fd with
              | Some conn -> feed t conn (Bytes.sub_string buf 0 n)
              | None -> ())
            | exception Unix.Unix_error ((ECONNRESET | EBADF | EPIPE), _, _) ->
              close_client fd)
        ready);
    match step t with `Stop -> stop := true | `Worked | `Idle -> ()
  done;
  Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ()) clients;
  (try Unix.close listener with Unix.Unix_error _ -> ());
  cleanup ();
  Ok ()

let io_error path e = Error (Err.Io { path; msg = Unix.error_message e })

let serve_unix t path =
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let bound =
    match Unix.bind listener (Unix.ADDR_UNIX path) with
    | () -> Ok ()
    | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) -> begin
      (* a socket file exists — live server, or debris from a crash?
         probe it: connection refused means nobody is listening *)
      let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let live =
        match Unix.connect probe (Unix.ADDR_UNIX path) with
        | () -> true
        | exception Unix.Unix_error _ -> false
      in
      (try Unix.close probe with Unix.Unix_error _ -> ());
      if live then
        Error
          (Err.Io { path; msg = "socket is in use by a live scaguard serve" })
      else begin
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        match Unix.bind listener (Unix.ADDR_UNIX path) with
        | () -> Ok ()
        | exception Unix.Unix_error (e, _, _) -> io_error path e
      end
    end
    | exception Unix.Unix_error (e, _, _) -> io_error path e
  in
  match bound with
  | Error e ->
    (try Unix.close listener with Unix.Unix_error _ -> ());
    Error e
  | Ok () ->
    Unix.listen listener 64;
    serve_listener t listener ~cleanup:(fun () ->
        try Unix.unlink path with Unix.Unix_error _ -> ())

let serve_tcp t host port =
  let addr =
    match Unix.inet_addr_of_string host with
    | a -> Ok a
    | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
        Error
          (Err.Io { path = host; msg = "cannot resolve host" })
      | { Unix.h_addr_list; _ } -> Ok h_addr_list.(0))
  in
  match addr with
  | Error e -> Error e
  | Ok addr -> (
    let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt listener Unix.SO_REUSEADDR true;
    match Unix.bind listener (Unix.ADDR_INET (addr, port)) with
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close listener with Unix.Unix_error _ -> ());
      io_error (Printf.sprintf "%s:%d" host port) e
    | () ->
      Unix.listen listener 64;
      serve_listener t listener ~cleanup:(fun () -> ()))

let serve t endpoint =
  match endpoint with
  | Stdio -> serve_channels t ~ic:stdin ~oc:stdout
  | Unix_socket path -> serve_unix t path
  | Tcp { host; port } -> serve_tcp t host port
