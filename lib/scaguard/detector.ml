type poc = { family : string; model : Model.t }
type repository = poc list

type verdict = {
  scores : (string * string * float) list;
  best_family : string option;
  best_score : float;
}

let default_threshold = 0.60

(* Deterministic ordering: score descending, then family, then model name —
   ties must not depend on how the repository list was assembled. *)
let compare_scored (n1, f1, s1) (n2, f2, s2) =
  match Float.compare s2 s1 with
  | 0 -> (
    match String.compare f1 f2 with
    | 0 -> String.compare n1 n2
    | c -> c)
  | c -> c

let classify ?(threshold = default_threshold) ?alpha ?ws ?band repository target =
  let scores =
    List.map
      (fun p ->
        ( p.model.Model.name,
          p.family,
          Dtw.compare_models ?ws ?band ?alpha p.model target ))
      repository
    |> List.sort compare_scored
  in
  match scores with
  | [] -> { scores = []; best_family = None; best_score = 0.0 }
  | (_, family, score) :: _ ->
    {
      scores;
      best_family = (if score >= threshold then Some family else None);
      best_score = score;
    }

let is_attack v = Option.is_some v.best_family

let empty_verdict = { scores = []; best_family = None; best_score = 0.0 }

let classify_batch ?threshold ?alpha ?band ?domains repository targets =
  let tasks = Array.length targets in
  let out = Array.make tasks empty_verdict in
  let d = Sutil.Pool.domains_for ?domains tasks in
  let wss = Array.init d (fun _ -> Dtw.workspace ()) in
  ignore
    (Sutil.Pool.run ~domains:d ~tasks (fun ~worker i ->
         out.(i) <-
           classify ?threshold ?alpha ?band ~ws:wss.(worker) repository
             targets.(i)));
  out
