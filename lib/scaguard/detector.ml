type poc = { family : string; model : Model.t }
type repository = poc list

type verdict = {
  best_matches : (string * string * float) list;
  best_family : string option;
  best_score : float;
}

let default_threshold = 0.60

(* Deterministic ordering: score descending, then family, then model name —
   ties must not depend on how the repository list was assembled. *)
let compare_scored (n1, f1, s1) (n2, f2, s2) =
  match Float.compare s2 s1 with
  | 0 -> (
    match String.compare f1 f2 with
    | 0 -> String.compare n1 n2
    | c -> c)
  | c -> c

let empty_verdict = { best_matches = []; best_family = None; best_score = 0.0 }

let score_all ?alpha ?ws ?band repository target =
  List.map
    (fun p ->
      ( p.model.Model.name,
        p.family,
        Dtw.compare_models ?ws ?band ?alpha p.model target ))
    repository
  |> List.sort compare_scored

type prepared = {
  pocs : (poc * Dtw.summary) array;
  index : Vpindex.t option;
}

let build_index index pocs =
  match index with
  | None -> None
  | Some spec -> Vpindex.build spec (Array.map snd pocs)

let prepare ?index repository =
  let pocs =
    Array.of_list (List.map (fun p -> (p, Dtw.summarize p.model)) repository)
  in
  { pocs; index = build_index index pocs }

(* The binary repository image loads each PoC together with its summary
   (magnitudes are stored inline), so Persist can hand back a prepared
   repository without a summarization pass. *)
let prepare_summarized ?index pocs =
  let pocs = Array.copy pocs in
  { pocs; index = build_index index pocs }

let prepared_size prep = Array.length prep.pocs

let prepared_index prep = prep.index

let prepared_summaries prep = Array.map snd prep.pocs

let attach_index prep index =
  (match index with
  | Some ix when Vpindex.size ix <> Array.length prep.pocs ->
    invalid_arg
      (Printf.sprintf
         "Detector.attach_index: index covers %d models, repository has %d"
         (Vpindex.size ix) (Array.length prep.pocs))
  | _ -> ());
  { prep with index }

let classify_prepared ?(threshold = default_threshold) ?alpha ?ws ?band
    ?(prune = true) ?ixc prep target =
  let k = Array.length prep.pocs in
  (* provenance is pure observation: the builder (created only when the
     switch is on — one ref load, zero allocation otherwise) is written to
     but never read on this path, so the verdict is bit-identical with
     capture on or off.  The k = 0 case still records (and consumes any
     pending ensemble note), so every classification has a record. *)
  let prov =
    if Provenance.enabled () then
      Some (Provenance.start ~target:target.Model.name ~threshold)
    else None
  in
  if k = 0 then begin
    (match prov with
    | None -> ()
    | Some b ->
      Provenance.finish b ~best_matches:[] ~best_family:None ~best_score:0.0);
    empty_verdict
  end
  else begin
    (* the bounds are only sound for a convex blend of the two cost terms;
       exotic ablation alphas fall back to full scoring *)
    let prune =
      prune && (match alpha with None -> true | Some a -> a >= 0.0 && a <= 1.0)
    in
    let st = Dtw.summarize target in
    let best = ref neg_infinity in
    let kept = ref [] in
    (* the cutoff is the best score seen so far: a pair provably below it
       can never appear among the best-score ties.  The first pair visited
       is always scored exactly.  Every score that comes back is exact, so
       neither the visit order nor which strictly-losing pairs get pruned
       can change the verdict — the final ordering is compare_scored. *)
    let score ?lb i =
      let p, sp = prep.pocs.(i) in
      let cutoff = if prune && !best > neg_infinity then Some !best else None in
      (* the abandoned-counter delta distinguishes "lower bound proved it"
         from "the DP started and hit the cutoff" without touching the
         scoring path *)
      let ab0 =
        match (prov, ws) with
        | Some _, Some w -> Dtw.pairs_abandoned w
        | _ -> 0
      in
      let r = Dtw.compare_summaries ?ws ?band ?alpha ?cutoff ?lb sp st in
      (match prov with
      | None -> ()
      | Some b ->
        Provenance.candidate b ~poc:p.model.Model.name ~family:p.family ?lb
          (match r with
          | Some s -> Provenance.Scored s
          | None -> (
            match ws with
            | Some w when Dtw.pairs_abandoned w > ab0 -> Provenance.Abandoned
            | Some _ -> Provenance.Pruned_lb
            | None -> Provenance.Pruned)));
      match r with
      | Some s ->
        kept := (p.model.Model.name, p.family, s) :: !kept;
        if s > !best then best := s
      | None -> ()
    in
    (match prep.index with
    | Some ix when prune ->
      (* best-first over the index: subtrees whose aggregate bound cannot
         beat the running best are skipped wholesale.  The radius mirrors
         compare_summaries' cutoff conversion exactly, margin included. *)
      let dmax () =
        if !best > neg_infinity then 1.0 -. !best +. Dtw.prune_margin
        else infinity
      in
      let trace =
        match prov with
        | None -> None
        | Some b ->
          Provenance.set_path b Provenance.Indexed;
          Some (fun ev -> Provenance.index_event b ev)
      in
      Vpindex.search ?alpha ?ixc ?trace ix st ~dmax ~visit:(fun i -> score i)
    | _ ->
      (* linear cascade: visiting PoCs by ascending lower bound tends to
         establish a tight cutoff on the very first DP, maximizing what
         the cascade can prune afterwards.  The index tie-break keeps the
         visit order deterministic. *)
      let order =
        if not prune then Array.init k (fun i -> (i, None))
        else begin
          let lbs =
            Array.init k (fun i ->
                (i, Some (Dtw.lower_bound ?ws ?alpha (snd prep.pocs.(i)) st)))
          in
          Array.sort
            (fun (i, la) (j, lb) ->
              match Float.compare (Option.get la) (Option.get lb) with
              | 0 -> Int.compare i j
              | c -> c)
            lbs;
          lbs
        end
      in
      Array.iter (fun (i, lb) -> score ?lb i) order);
    let b = !best in
    let best_matches =
      List.filter (fun (_, _, s) -> s = b) !kept |> List.sort compare_scored
    in
    let best_family =
      if b >= threshold then
        match best_matches with
        | (_, family, _) :: _ -> Some family
        | [] -> None
      else None
    in
    (match prov with
    | None -> ()
    | Some pb -> Provenance.finish pb ~best_matches ~best_family ~best_score:b);
    { best_matches; best_family; best_score = b }
  end

let score_all_prepared ?alpha ?ws ?band prep target =
  (* every score is reported, so there is nothing sound to skip: the index
     (when present) is deliberately not consulted, and the result is
     bit-identical to score_all on the underlying repository *)
  let st = Dtw.summarize target in
  Array.to_list prep.pocs
  |> List.map (fun (p, sp) ->
         ( p.model.Model.name,
           p.family,
           Option.get (Dtw.compare_summaries ?ws ?band ?alpha sp st) ))
  |> List.sort compare_scored

let classify ?threshold ?alpha ?ws ?band ?prune repository target =
  classify_prepared ?threshold ?alpha ?ws ?band ?prune (prepare repository)
    target

let is_attack v = Option.is_some v.best_family

let classify_batch ?threshold ?alpha ?band ?domains ?prune ?index repository
    targets =
  let tasks = Array.length targets in
  let out = Array.make tasks empty_verdict in
  let d = Sutil.Pool.domains_for ?domains tasks in
  let wss = Array.init d (fun _ -> Dtw.workspace ()) in
  let prep = prepare ?index repository in
  ignore
    (Sutil.Pool.run ~domains:d ~tasks (fun ~worker i ->
         out.(i) <-
           classify_prepared ?threshold ?alpha ?band ?prune ~ws:wss.(worker)
             prep targets.(i)));
  out
