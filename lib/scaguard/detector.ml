type poc = { family : string; model : Model.t }
type repository = poc list

type verdict = {
  best_matches : (string * string * float) list;
  best_family : string option;
  best_score : float;
}

let default_threshold = 0.60

(* Deterministic ordering: score descending, then family, then model name —
   ties must not depend on how the repository list was assembled. *)
let compare_scored (n1, f1, s1) (n2, f2, s2) =
  match Float.compare s2 s1 with
  | 0 -> (
    match String.compare f1 f2 with
    | 0 -> String.compare n1 n2
    | c -> c)
  | c -> c

let empty_verdict = { best_matches = []; best_family = None; best_score = 0.0 }

let score_all ?alpha ?ws ?band repository target =
  List.map
    (fun p ->
      ( p.model.Model.name,
        p.family,
        Dtw.compare_models ?ws ?band ?alpha p.model target ))
    repository
  |> List.sort compare_scored

type prepared = { pocs : (poc * Dtw.summary) array }

let prepare repository =
  { pocs = Array.of_list (List.map (fun p -> (p, Dtw.summarize p.model)) repository) }

(* The binary repository image loads each PoC together with its summary
   (magnitudes are stored inline), so Persist can hand back a prepared
   repository without a summarization pass. *)
let prepare_summarized pocs = { pocs = Array.copy pocs }

let prepared_size prep = Array.length prep.pocs

let classify_prepared ?(threshold = default_threshold) ?alpha ?ws ?band
    ?(prune = true) prep target =
  let k = Array.length prep.pocs in
  if k = 0 then empty_verdict
  else begin
    (* the bounds are only sound for a convex blend of the two cost terms;
       exotic ablation alphas fall back to full scoring *)
    let prune =
      prune && (match alpha with None -> true | Some a -> a >= 0.0 && a <= 1.0)
    in
    let st = Dtw.summarize target in
    (* best-so-far ordering: visiting PoCs by ascending lower bound tends to
       establish a tight cutoff on the very first DP, maximizing what the
       cascade can prune afterwards.  The index tie-break keeps the visit
       order deterministic; the final verdict ordering is compare_scored
       and does not depend on the visit order. *)
    let order =
      if not prune then Array.init k (fun i -> (i, None))
      else begin
        let lbs =
          Array.init k (fun i ->
              (i, Some (Dtw.lower_bound ?ws ?alpha (snd prep.pocs.(i)) st)))
        in
        Array.sort
          (fun (i, la) (j, lb) ->
            match Float.compare (Option.get la) (Option.get lb) with
            | 0 -> Int.compare i j
            | c -> c)
          lbs;
        lbs
      end
    in
    let best = ref neg_infinity in
    let kept = ref [] in
    Array.iter
      (fun (i, lb) ->
        let p, sp = prep.pocs.(i) in
        (* the cutoff is the best score seen so far: a pair provably below
           it can never appear among the best-score ties.  The first pair
           is always scored exactly. *)
        let cutoff = if prune && !best > neg_infinity then Some !best else None in
        match Dtw.compare_summaries ?ws ?band ?alpha ?cutoff ?lb sp st with
        | Some s ->
          kept := (p.model.Model.name, p.family, s) :: !kept;
          if s > !best then best := s
        | None -> ())
      order;
    let b = !best in
    let best_matches =
      List.filter (fun (_, _, s) -> s = b) !kept |> List.sort compare_scored
    in
    {
      best_matches;
      best_family =
        (if b >= threshold then
           match best_matches with
           | (_, family, _) :: _ -> Some family
           | [] -> None
         else None);
      best_score = b;
    }
  end

let classify ?threshold ?alpha ?ws ?band ?prune repository target =
  classify_prepared ?threshold ?alpha ?ws ?band ?prune (prepare repository)
    target

let is_attack v = Option.is_some v.best_family

let classify_batch ?threshold ?alpha ?band ?domains ?prune repository targets =
  let tasks = Array.length targets in
  let out = Array.make tasks empty_verdict in
  let d = Sutil.Pool.domains_for ?domains tasks in
  let wss = Array.init d (fun _ -> Dtw.workspace ()) in
  let prep = prepare repository in
  ignore
    (Sutil.Pool.run ~domains:d ~tasks (fun ~worker i ->
         out.(i) <-
           classify_prepared ?threshold ?alpha ?band ?prune ~ws:wss.(worker)
             prep targets.(i)));
  out
