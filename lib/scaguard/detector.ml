type poc = { family : string; model : Model.t }
type repository = poc list

type verdict = {
  scores : (string * string * float) list;
  best_family : string option;
  best_score : float;
}

let default_threshold = 0.60

let classify ?(threshold = default_threshold) ?alpha repository target =
  let scores =
    List.map
      (fun p ->
        ( p.model.Model.name,
          p.family,
          Dtw.compare_models ?alpha p.model target ))
      repository
    |> List.sort (fun (_, _, a) (_, _, b) -> Float.compare b a)
  in
  match scores with
  | [] -> { scores = []; best_family = None; best_score = 0.0 }
  | (_, family, score) :: _ ->
    {
      scores;
      best_family = (if score >= threshold then Some family else None);
      best_score = score;
    }

let is_attack v = Option.is_some v.best_family
