(* Strict, dependency-free JSON for the wire protocol, the structured
   event log and the provenance records.  Extracted verbatim from the
   serve daemon (Server re-exports it as [Server.Json], so existing
   protocol code keeps compiling).  The parser is strict on purpose: a
   hostile frame can fail one request but never desynchronize a stream
   or smuggle raw control bytes into a reply. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Fail of int * string

let max_depth = 64

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < n then
      match s.[!pos] with
      | ' ' | '\t' | '\n' | '\r' ->
        advance ();
        skip_ws ()
      | _ -> ()
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail "invalid literal"
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad hex digit in \\u escape"
      in
      v := (!v lsl 4) lor d;
      advance ()
    done;
    !v
  in
  let add_utf8 b cp =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      if c = '"' then begin
        advance ();
        Buffer.contents b
      end
      else if c = '\\' then begin
        advance ();
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
          let cp = hex4 () in
          if cp >= 0xD800 && cp <= 0xDBFF then
            (* high surrogate: the low half must follow *)
            if !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u' then begin
              pos := !pos + 2;
              let lo = hex4 () in
              if lo < 0xDC00 || lo > 0xDFFF then fail "unpaired surrogate";
              add_utf8 b (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
            end
            else fail "unpaired surrogate"
          else if cp >= 0xDC00 && cp <= 0xDFFF then fail "unpaired surrogate"
          else add_utf8 b cp
        | _ -> fail "invalid escape");
        go ()
      end
      else if Char.code c < 0x20 then fail "raw control character in string"
      else begin
        Buffer.add_char b c;
        advance ();
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while
        !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false
      do
        advance ()
      done;
      if !pos = d0 then fail "malformed number"
    in
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f when Float.is_finite f -> f
    | _ -> fail "malformed number"
  in
  let rec parse_value depth =
    if depth >= max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (elems [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (p, msg) -> Error (Printf.sprintf "%s at byte %d" msg p)

(* Same escaping as [Obs.Json.escape], duplicated here because this module
   sits below [Obs] in the dependency order (Obs -> Persist -> Detector ->
   Provenance -> Json). *)
let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Integral numbers (ids, counts) print as integers; everything else as
   %.17g, which round-trips float64 exactly — verdict scores survive the
   wire bit for bit. *)
let num_to_string f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f <= 9007199254740992.0 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec to_buf b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num f -> Buffer.add_string b (num_to_string f)
  | Str s ->
    Buffer.add_char b '"';
    Buffer.add_string b (escape s);
    Buffer.add_char b '"'
  | List l ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        to_buf b v)
      l;
    Buffer.add_char b ']'
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        Buffer.add_string b (escape k);
        Buffer.add_string b "\":";
        to_buf b v)
      kvs;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  to_buf b v;
  Buffer.contents b

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
