(** The leveled, structured event log (JSONL).

    Replaces ad-hoc stderr prints across the CLI, daemon and cache with one
    emission API that feeds two independent outputs:

    - a {b bounded, non-blocking capture buffer} (a lock-free Treiber stack
      with a hard cap — overflow is counted in {!dropped}, never waited on),
      drained into a JSON-Lines artifact by {!write}
      ([detect-batch --log-out]);
    - a {b stderr mirror} at a configurable minimum severity, preserving the
      exact bytes operators and CI already depend on.

    Timestamps are monotonic ({!Obs.Clock}), so JSONL line order is
    meaningful across wall-clock steps; events are stamped with the ambient
    {!Obs.trace_id} by default, correlating them with spans and provenance
    records.  Like {!Obs}, the disabled path is one ref load and branch with
    zero allocation, and capturing is pure observation: no verdict bit
    depends on it (qcheck-asserted). *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string
(** ["debug"] / ["info"] / ["warn"] / ["error"] — the spelling used in the
    JSONL, the config file and the CLI's [--log-level] flag. *)

val level_of_string : string -> level option

val severity : level -> int
(** Monotone rank for threshold comparison: Debug 0 … Error 3. *)

type event = {
  seq : int;  (** global emission order (atomic counter) — the sort key *)
  ts_ns : int64;  (** {!Obs.Clock.now_ns} at emission *)
  level : level;
  event : string;  (** dotted event name, e.g. ["serve.start"] *)
  message : string;  (** the human-readable line (what the mirror prints) *)
  trace_id : string option;
  fields : (string * Json.t) list;  (** typed structured context *)
}

(** {1 Switches}

    Plain refs like the {!Obs} switches: written by front-ends around a
    run, read once per emission site. *)

val enabled : unit -> bool
val set_capture : bool -> unit
(** Toggle the capture buffer (default off).  The stderr mirror is
    independent of this switch. *)

val level : unit -> level
val set_level : level -> unit
(** Minimum severity captured into the buffer (default [Debug]). *)

val mirror_level : unit -> level option
val set_mirror_level : level option -> unit
(** Minimum severity mirrored to stderr, or [None] for silence.  The
    default, [Some Info], keeps the CLI's and daemon's existing stderr
    lines byte-identical. *)

val set_capacity : int -> unit
(** Capture-buffer bound (default 8192 events).  Once full, further events
    are counted in {!dropped} and discarded — emission never blocks.
    @raise Invalid_argument if [< 1]. *)

(** {1 Emission} *)

val event :
  ?trace_id:string ->
  ?fields:(string * Json.t) list ->
  level ->
  string ->
  string ->
  unit
(** [event lvl name message] — mirror [message] to stderr (when [lvl]
    reaches the mirror level) and capture a structured event (when capture
    is on and [lvl] reaches the capture level).  [trace_id] defaults to the
    ambient {!Obs.trace_id}.  Lock-free; safe from any domain. *)

val debug :
  ?trace_id:string -> ?fields:(string * Json.t) list -> string ->
  ('a, unit, string, unit) format4 -> 'a

val info :
  ?trace_id:string -> ?fields:(string * Json.t) list -> string ->
  ('a, unit, string, unit) format4 -> 'a

val warn :
  ?trace_id:string -> ?fields:(string * Json.t) list -> string ->
  ('a, unit, string, unit) format4 -> 'a

val error :
  ?trace_id:string -> ?fields:(string * Json.t) list -> string ->
  ('a, unit, string, unit) format4 -> 'a
(** [info name fmt ...] — {!event} with a printf-style message. *)

val err_fields : Err.t -> (string * Json.t) list
(** The typed context of an {!Err.t} as structured fields ([kind] plus the
    variant's payload), so error events are queryable by field rather than
    by parsing a rendered string. *)

val err : ?trace_id:string -> ?prefix:string -> string -> Err.t -> unit
(** [err name e] — an [Error]-level event named [name] with
    {!err_fields}[ e] and the message ["<prefix>: <Err.to_string e>"]
    ([prefix] defaults to ["scaguard"]) — the structured replacement for
    [Printf.eprintf "scaguard: %s" (Err.to_string e)]: same stderr bytes
    via the mirror, plus the typed record. *)

(** {1 Draining} *)

val events : unit -> event list
(** Captured events since the last {!clear}, in emission order. *)

val dropped : unit -> int
(** Events discarded because the buffer was full. *)

val clear : unit -> unit

val event_to_json : event -> Json.t

val to_jsonl : event list -> string
(** One compact JSON object per line.  When {!dropped} is non-zero a final
    [log.dropped] marker line records the loss — a truncated log says so. *)

val write : path:string -> (unit, Err.t) result
(** Atomically write the captured events as JSONL
    ({!Persist.write_atomic}); [Error (Io _)] on failure. *)
