let default_alpha = 0.5

let instruction_distance ?lev a b =
  Sutil.Levenshtein.normalized ?ws:lev ~equal:String.equal a b

let csp_distance = Cst.distance

(* The production cost runs the Levenshtein DP over the interned token ids
   (one int compare per cell).  Interning from one pool preserves token
   equality — the only thing the DP consults — so this is bit-identical to
   the string cost below; the bench's modeling stage asserts it. *)
let entry_distance ?lev ?(alpha = default_alpha) (e1 : Model.entry)
    (e2 : Model.entry) =
  (alpha
  *. Sutil.Levenshtein.normalized_ints ?ws:lev e1.Model.tokens e2.Model.tokens)
  +. ((1.0 -. alpha) *. csp_distance e1.Model.cst e2.Model.cst)

let entry_distance_strings ?lev ?(alpha = default_alpha) (e1 : Model.entry)
    (e2 : Model.entry) =
  (alpha *. instruction_distance ?lev e1.Model.normalized e2.Model.normalized)
  +. ((1.0 -. alpha) *. csp_distance e1.Model.cst e2.Model.cst)

(* Lower bound on [entry_distance] from per-entry summaries alone.

   Soundness: D_IS = lev / max_len >= |len1 - len2| / max_len (the
   Levenshtein length bound), and D_CSP is *exactly*
   |mag1 - mag2| when mag_i is the entry's cache-change magnitude
   (Cst.distance is the absolute magnitude difference), so for
   alpha in [0,1] the convex blend of the two bounds is <= the blend of
   the true terms. *)
let entry_lower_bound ?(alpha = default_alpha) (len1, mag1) (len2, mag2) =
  let lev_lb =
    if len1 = 0 && len2 = 0 then 0.0
    else float_of_int (abs (len1 - len2)) /. float_of_int (max len1 len2)
  in
  (alpha *. lev_lb) +. ((1.0 -. alpha) *. abs_float (mag1 -. mag2))
