let instruction_distance a b =
  Sutil.Levenshtein.normalized ~equal:String.equal a b

let csp_distance = Cst.distance

let entry_distance ?(alpha = 0.5) (e1 : Model.entry) (e2 : Model.entry) =
  (alpha *. instruction_distance e1.Model.normalized e2.Model.normalized)
  +. ((1.0 -. alpha) *. csp_distance e1.Model.cst e2.Model.cst)
