let instruction_distance ?lev a b =
  Sutil.Levenshtein.normalized ?ws:lev ~equal:String.equal a b

let csp_distance = Cst.distance

let entry_distance ?lev ?(alpha = 0.5) (e1 : Model.entry) (e2 : Model.entry) =
  (alpha *. instruction_distance ?lev e1.Model.normalized e2.Model.normalized)
  +. ((1.0 -. alpha) *. csp_distance e1.Model.cst e2.Model.cst)
