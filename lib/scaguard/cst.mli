(** Cache state transition measurement (§III-A3).

    Each attack-relevant block is replayed in isolation inside a small cache
    simulator that starts {e full of non-attacker data} ([AO = 0, IO = 1]);
    feeding the block's recorded memory accesses (as the attacker) yields the
    block's cache state transition — its semantic cache signature. *)

type t = {
  before : Cache.State.t;  (** always [(AO=0, IO=1)] under the paper's setup *)
  after : Cache.State.t;
}

type measurer
(** A reusable scratch probe-cache.  Owned by one caller at a time (one per
    pool worker); reusing it across {!measure} calls skips the per-block
    cache allocation while producing byte-identical measurements. *)

val measurer : unit -> measurer

val measure :
  ?measurer:measurer ->
  ?config:Cache.Config.t ->
  (int * Hpc.Collector.access_kind) list -> t
(** Replay one block's accesses.  [config] defaults to
    {!Cache.Config.cst_probe}.  [measurer] reuses a scratch simulator
    (reset + refilled per call) instead of allocating a fresh one; results
    are identical with or without it.  An empty access list short-circuits
    to a shared trivial transition ([before = after =] the filled state)
    with no simulation at all. *)

val change_magnitude : t -> float
(** The paper's [P]: mean absolute occupancy change over the transition. *)

val distance : t -> t -> float
(** D_CSP between two transitions: [|P2 - P1|]. *)

val pp : Format.formatter -> t -> unit
