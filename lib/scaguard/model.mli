(** The attack behavior model: a cache-state-transition-enhanced basic block
    sequence (CST-BBS, Definition 5).

    The attack-relevant graph is flattened into a block sequence ordered by
    each block's first execution timestamp, and every block carries its
    normalized instruction sequence and its measured CST. *)

type entry = {
  block : int;                 (** CFG block id *)
  instrs : Isa.Instr.t list;   (** the block's instructions *)
  normalized : string array;   (** normalized tokens (imm/mem/reg rules) *)
  cst : Cst.t;
  first_time : int;            (** first retirement timestamp; [max_int] for
                                   statically restored, never-executed blocks *)
}

type t = {
  name : string;
  entries : entry list;        (** the CST-BBS, in timestamp order *)
}

val build :
  ?cst_config:Cache.Config.t -> name:string ->
  Relevant.info -> Attack_graph.t -> t
(** Assemble the model from identification output and the attack-relevant
    graph. *)

val length : t -> int
val is_empty : t -> bool

val entries_array : t -> entry array
(** The CST-BBS as a fresh array, in timestamp order.  The DTW scorers index
    entries randomly; {!Dtw.summarize} performs this conversion once per
    model so batch scoring never re-walks the list. *)

val pp : Format.formatter -> t -> unit
