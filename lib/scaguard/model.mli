(** The attack behavior model: a cache-state-transition-enhanced basic block
    sequence (CST-BBS, Definition 5).

    The attack-relevant graph is flattened into a block sequence ordered by
    each block's first execution timestamp, and every block carries its
    normalized instruction sequence and its measured CST. *)

type entry = {
  block : int;                 (** CFG block id *)
  instrs : Isa.Instr.t list;   (** the block's instructions *)
  normalized : string array;   (** normalized tokens (imm/mem/reg rules) *)
  tokens : int array;
    (** [normalized], interned through {!Sutil.Intern.global}: same length,
        and two tokens are equal iff the corresponding strings are.  The
        Levenshtein inner loop of {!Distance.entry_distance} compares these
        ints; ids are process-local, so they are never persisted. *)
  cst : Cst.t;
  first_time : int;            (** first retirement timestamp; [max_int] for
                                   statically restored, never-executed blocks *)
}

type t = private {
  name : string;
  entries : entry list;        (** the CST-BBS, in timestamp order *)
  entries_arr : entry array;
    (** [entries] as an array, materialized once at construction — the DTW
        scorers index it on every comparison ({!entries_array}). *)
}

val make_entry :
  block:int -> instrs:Isa.Instr.t list -> normalized:string array ->
  cst:Cst.t -> first_time:int -> entry
(** Assemble one entry, interning [normalized] into {!field-entry.tokens}. *)

val make : name:string -> entry list -> t
(** Assemble a model, materializing the entries array once. *)

val build :
  ?cst_config:Cache.Config.t -> ?measurer:Cst.measurer -> name:string ->
  Relevant.info -> Attack_graph.t -> t
(** Assemble the model from identification output and the attack-relevant
    graph.  [measurer] lends a reusable probe-cache to the per-block CST
    measurements (one per pool worker); within one build, blocks with
    identical access lists share a single measurement.  Results are
    byte-identical with or without either optimization. *)

val length : t -> int
val is_empty : t -> bool

val entries_array : t -> entry array
(** The CST-BBS as an array, in timestamp order.  The array is the one
    materialized at construction and is {e shared} — callers must not
    mutate it.  (It used to be rebuilt from the entry list on every call,
    which put an O(n) allocation on every {!Dtw.compare_models}.) *)

val pp : Format.formatter -> t -> unit
