(** The CST distance (§III-B1): the mean of a syntactic term (normalized
    Levenshtein over normalized instruction sequences) and a semantic term
    (difference of cache-change magnitudes). *)

val default_alpha : float
(** The paper's weighting of the two terms: [0.5], the plain mean.  Every
    [?alpha] default in this library (including the pruning bounds in
    {!Dtw}) refers to this value so they can never drift apart. *)

val instruction_distance :
  ?lev:Sutil.Levenshtein.workspace -> string array -> string array -> float
(** D_IS: normalized Levenshtein over normalized instruction tokens,
    in [\[0,1\]].  [lev] reuses the edit-distance row buffers (hot batch
    path); results are identical with or without it. *)

val csp_distance : Cst.t -> Cst.t -> float
(** D_CSP, in [\[0,1\]]. *)

val entry_distance :
  ?lev:Sutil.Levenshtein.workspace ->
  ?alpha:float -> Model.entry -> Model.entry -> float
(** [Distance(tau1, tau2) = alpha*D_IS + (1-alpha)*D_CSP]; the paper's
    definition is the plain mean ([alpha = 0.5], the default).  [alpha] is
    exposed for the ablation benches (1.0 = syntax only, 0.0 = cache
    only).  The syntactic term runs over the entries' {e interned} tokens
    ({!Model.entry.tokens}) — one int compare per DP cell — and is
    bit-identical to {!entry_distance_strings}, the string-token
    reference. *)

val entry_distance_strings :
  ?lev:Sutil.Levenshtein.workspace ->
  ?alpha:float -> Model.entry -> Model.entry -> float
(** The pre-interning reference cost: the same blend with the Levenshtein
    term computed over the [normalized] string arrays.  Exists so tests and
    the bench can assert "interning on = interning off" bit for bit; the
    production scorers always use {!entry_distance}. *)

val entry_lower_bound :
  ?alpha:float -> int * float -> int * float -> float
(** [entry_lower_bound (len1, mag1) (len2, mag2)]: O(1) lower bound on
    {!entry_distance} computed from per-entry summaries only — each entry
    reduced to its normalized-token count [len] and the cache-change
    magnitude [mag] of its CST.  The syntactic term is bounded by
    the Levenshtein length gap ([Sutil.Levenshtein.normalized_lower_bound]);
    the semantic term [|mag1 - mag2|] is D_CSP {e exactly}.  Sound (never
    exceeds the true distance) for [alpha] in [\[0,1\]]; the pruning cascade
    in {!Dtw} disables itself outside that range. *)
