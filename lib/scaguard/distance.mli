(** The CST distance (§III-B1): the mean of a syntactic term (normalized
    Levenshtein over normalized instruction sequences) and a semantic term
    (difference of cache-change magnitudes). *)

val instruction_distance :
  ?lev:Sutil.Levenshtein.workspace -> string array -> string array -> float
(** D_IS: normalized Levenshtein over normalized instruction tokens,
    in [\[0,1\]].  [lev] reuses the edit-distance row buffers (hot batch
    path); results are identical with or without it. *)

val csp_distance : Cst.t -> Cst.t -> float
(** D_CSP, in [\[0,1\]]. *)

val entry_distance :
  ?lev:Sutil.Levenshtein.workspace ->
  ?alpha:float -> Model.entry -> Model.entry -> float
(** [Distance(tau1, tau2) = alpha*D_IS + (1-alpha)*D_CSP]; the paper's
    definition is the plain mean ([alpha = 0.5], the default).  [alpha] is
    exposed for the ablation benches (1.0 = syntax only, 0.0 = cache
    only). *)
