let pairwise ?alpha models =
  let arr = Array.of_list models in
  let n = Array.length arr in
  let acc = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      acc := (arr.(i), arr.(j), Dtw.compare_models ?alpha arr.(i) arr.(j)) :: !acc
    done
  done;
  List.rev !acc

let by_similarity ?(threshold = Detector.default_threshold) ?alpha models =
  let arr = Array.of_list models in
  let n = Array.length arr in
  (* union-find *)
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else (parent.(i) <- find parent.(i); parent.(i)) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Dtw.compare_models ?alpha arr.(i) arr.(j) >= threshold then union i j
    done
  done;
  let groups = Hashtbl.create 8 in
  Array.iteri
    (fun i m ->
      let r = find i in
      Hashtbl.replace groups r
        (m :: Option.value ~default:[] (Hashtbl.find_opt groups r)))
    arr;
  Hashtbl.fold (fun _ g acc -> List.rev g :: acc) groups []
  |> List.sort (fun a b -> Int.compare (List.length b) (List.length a))

let medoid ?alpha = function
  | [] -> invalid_arg "Cluster.medoid: empty cluster"
  | [ m ] -> m
  | models ->
    let score m =
      List.fold_left
        (fun acc m' -> if m == m' then acc else acc +. Dtw.compare_models ?alpha m m')
        0.0 models
    in
    List.fold_left
      (fun (best, bs) m ->
        let s = score m in
        if s > bs then (m, s) else (best, bs))
      (List.hd models, score (List.hd models))
      models
    |> fst

let curate_repository ?threshold ?alpha samples =
  let clusters = by_similarity ?threshold ?alpha (List.map snd samples) in
  List.map
    (fun cluster ->
      let family_of m =
        (* models are physically shared with the input list *)
        fst (List.find (fun (_, m') -> m == m') samples)
      in
      let majority =
        let counts = Hashtbl.create 4 in
        List.iter
          (fun m ->
            let f = family_of m in
            Hashtbl.replace counts f
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts f)))
          cluster;
        Hashtbl.fold
          (fun f n (bf, bn) -> if n > bn then (f, n) else (bf, bn))
          counts ("?", 0)
        |> fst
      in
      { Detector.family = majority; model = medoid ?alpha cluster })
    clusters
