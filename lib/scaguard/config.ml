type repo_format = Text | Binary

let repo_format_to_string = function Text -> "text" | Binary -> "binary"

let repo_format_of_string = function
  | "text" -> Some Text
  | "binary" -> Some Binary
  | _ -> None

type index_mode = Index_off | Index_auto | Index_vp

let index_mode_to_string = function
  | Index_off -> "off"
  | Index_auto -> "auto"
  | Index_vp -> "vp"

let index_mode_of_string = function
  | "off" -> Some Index_off
  | "auto" -> Some Index_auto
  | "vp" -> Some Index_vp
  | _ -> None

type t = {
  threshold : float;
  alpha : float option;
  band : int option;
  prune : bool;
  max_paths : int option;
  max_len : int option;
  cst_config : Cache.Config.t;
  exec : Cpu.Exec.settings;
  domains : int option;
  cache_dir : string option;
  salt : string;
  repo_format : repo_format;
  index : index_mode;
  index_leaf : int;
  index_pivots : int;
  ensemble_tau : float;
  log_level : Log.level;
}

let default =
  {
    threshold = Detector.default_threshold;
    alpha = None;
    band = None;
    prune = true;
    max_paths = None;
    max_len = None;
    cst_config = Cache.Config.cst_probe;
    exec = Cpu.Exec.default_settings;
    domains = None;
    cache_dir = None;
    salt = "";
    repo_format = Text;
    index = Index_auto;
    index_leaf = Vpindex.default_spec.Vpindex.leaf;
    index_pivots = Vpindex.default_spec.Vpindex.pivots;
    ensemble_tau = 2.0;
    log_level = Log.Info;
  }

(* -- field validation -------------------------------------------------------- *)

let invalid field value expected =
  Error (Err.Invalid_config { field; value; expected })

(* [x >= 0. && x <= 1.] is false for NaN, so NaN is rejected for free. *)
let check_unit_float ~default_field ?(field = "") x =
  let field = if field = "" then default_field else field in
  if x >= 0. && x <= 1. then Ok x
  else invalid field (Printf.sprintf "%g" x) "a number in [0, 1]"

let check_threshold ?field x = check_unit_float ~default_field:"threshold" ?field x
let check_alpha ?field x = check_unit_float ~default_field:"alpha" ?field x

let check_min ~default_field ~min ~expected ?(field = "") n =
  let field = if field = "" then default_field else field in
  if n >= min then Ok n else invalid field (string_of_int n) expected

let check_band ?field n =
  check_min ~default_field:"band" ~min:0 ~expected:"an integer >= 0" ?field n

let check_domains ?field n =
  check_min ~default_field:"domains" ~min:1 ~expected:"a worker count >= 1"
    ?field n

let check_max_paths ?field n =
  check_min ~default_field:"max_paths" ~min:1 ~expected:"an integer >= 1" ?field
    n

let check_max_len ?field n =
  check_min ~default_field:"max_len" ~min:1 ~expected:"an integer >= 1" ?field n

let check_index_leaf ?field n =
  check_min ~default_field:"index_leaf" ~min:2 ~expected:"a leaf size >= 2"
    ?field n

let check_index_pivots ?field n =
  check_min ~default_field:"index_pivots" ~min:1
    ~expected:"a pivot count >= 1" ?field n

(* [x >= 0. && x <= max_float] is false for NaN and infinity. *)
let check_ensemble_tau ?(field = "ensemble_tau") x =
  if x >= 0. && x <= max_float then Ok x
  else invalid field (Printf.sprintf "%g" x) "a finite screening threshold >= 0"

let ( let* ) = Result.bind

let check_opt check = function
  | None -> Ok None
  | Some v -> Result.map Option.some (check ?field:None v)

let check_cst (g : Cache.Config.t) =
  let* _ =
    check_min ~default_field:"cst_sets" ~min:1 ~expected:"a set count >= 1"
      g.Cache.Config.sets
  in
  let* _ =
    check_min ~default_field:"cst_ways" ~min:1 ~expected:"an associativity >= 1"
      g.Cache.Config.ways
  in
  let* _ =
    check_min ~default_field:"cst_line_bits" ~min:0
      ~expected:"a line-size log2 >= 0" g.Cache.Config.line_bits
  in
  Ok g

let check_exec (e : Cpu.Exec.settings) =
  let* _ =
    check_min ~default_field:"exec_spec_window" ~min:0
      ~expected:"an integer >= 0" e.Cpu.Exec.spec_window
  in
  let* _ =
    check_min ~default_field:"exec_quantum" ~min:1 ~expected:"an integer >= 1"
      e.Cpu.Exec.quantum
  in
  let* _ =
    check_min ~default_field:"exec_victim_quantum" ~min:1
      ~expected:"an integer >= 1" e.Cpu.Exec.victim_quantum
  in
  let* _ =
    check_min ~default_field:"exec_fuel" ~min:1 ~expected:"an integer >= 1"
      e.Cpu.Exec.fuel
  in
  match e.Cpu.Exec.protected_range with
  | Some (lo, hi) when lo < 0 || hi < lo ->
    invalid "exec_protected_range"
      (Printf.sprintf "%d:%d" lo hi)
      "a range lo:hi with 0 <= lo <= hi"
  | _ -> Ok e

let check_line ~field = function
  | s when String.contains s '\n' ->
    invalid field (String.escaped s) "a single-line value"
  | s -> Ok s

let validate c =
  let* _ = check_threshold c.threshold in
  let* _ = check_opt check_alpha c.alpha in
  let* _ = check_opt check_band c.band in
  let* _ = check_opt check_max_paths c.max_paths in
  let* _ = check_opt check_max_len c.max_len in
  let* _ = check_opt check_domains c.domains in
  let* _ = check_cst c.cst_config in
  let* _ = check_exec c.exec in
  let* _ =
    match c.cache_dir with
    | None -> Ok None
    | Some d -> Result.map Option.some (check_line ~field:"cache_dir" d)
  in
  let* _ = check_line ~field:"salt" c.salt in
  let* _ = check_index_leaf c.index_leaf in
  let* _ = check_index_pivots c.index_pivots in
  let* _ = check_ensemble_tau c.ensemble_tau in
  Ok c

(* -- persistence ------------------------------------------------------------- *)

(* key=value lines; optional fields are simply omitted when [None], so no
   sentinel value can collide with a legitimate salt or directory name.
   Floats print with %.17g, which float_of_string reads back exactly. *)
let to_string c =
  let b = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "scaguard-config 1\n";
  add "threshold=%.17g\n" c.threshold;
  (match c.alpha with Some a -> add "alpha=%.17g\n" a | None -> ());
  (match c.band with Some n -> add "band=%d\n" n | None -> ());
  add "prune=%b\n" c.prune;
  (match c.max_paths with Some n -> add "max_paths=%d\n" n | None -> ());
  (match c.max_len with Some n -> add "max_len=%d\n" n | None -> ());
  add "cst_sets=%d\n" c.cst_config.Cache.Config.sets;
  add "cst_ways=%d\n" c.cst_config.Cache.Config.ways;
  add "cst_line_bits=%d\n" c.cst_config.Cache.Config.line_bits;
  add "exec_spec_window=%d\n" c.exec.Cpu.Exec.spec_window;
  add "exec_quantum=%d\n" c.exec.Cpu.Exec.quantum;
  add "exec_victim_quantum=%d\n" c.exec.Cpu.Exec.victim_quantum;
  add "exec_fuel=%d\n" c.exec.Cpu.Exec.fuel;
  (match c.exec.Cpu.Exec.protected_range with
  | Some (lo, hi) -> add "exec_protected_range=%d:%d\n" lo hi
  | None -> ());
  (match c.domains with Some n -> add "domains=%d\n" n | None -> ());
  (match c.cache_dir with Some d -> add "cache_dir=%s\n" d | None -> ());
  add "salt=%s\n" c.salt;
  add "repo_format=%s\n" (repo_format_to_string c.repo_format);
  add "index=%s\n" (index_mode_to_string c.index);
  add "index_leaf=%d\n" c.index_leaf;
  add "index_pivots=%d\n" c.index_pivots;
  add "ensemble_tau=%.17g\n" c.ensemble_tau;
  add "log_level=%s\n" (Log.level_to_string c.log_level);
  Buffer.contents b

let of_string s =
  let exception Stop of int * string in
  let stopf ln fmt = Printf.ksprintf (fun msg -> raise (Stop (ln, msg))) fmt in
  let int_v ln v =
    match int_of_string_opt v with
    | Some n -> n
    | None -> stopf ln "bad integer %S" v
  in
  let float_v ln v =
    match float_of_string_opt v with
    | Some f -> f
    | None -> stopf ln "bad number %S" v
  in
  let bool_v ln v =
    match bool_of_string_opt v with
    | Some b -> b
    | None -> stopf ln "bad boolean %S (use true/false)" v
  in
  let range_v ln v =
    match String.index_opt v ':' with
    | Some i ->
      ( int_v ln (String.sub v 0 i),
        int_v ln (String.sub v (i + 1) (String.length v - i - 1)) )
    | None -> stopf ln "bad range %S (use lo:hi)" v
  in
  match String.split_on_char '\n' s with
  | header :: rest when String.trim header = "scaguard-config 1" -> (
    try
      let c = ref default in
      List.iteri
        (fun i line ->
          let ln = i + 2 in
          if line = "" || line.[0] = '#' then ()
          else
            match String.index_opt line '=' with
            | None -> stopf ln "expected key=value, got %S" line
            | Some eq ->
              let key = String.sub line 0 eq in
              let v = String.sub line (eq + 1) (String.length line - eq - 1) in
              let cur = !c in
              let cst = cur.cst_config and exec = cur.exec in
              c :=
                (match key with
                | "threshold" -> { cur with threshold = float_v ln v }
                | "alpha" -> { cur with alpha = Some (float_v ln v) }
                | "band" -> { cur with band = Some (int_v ln v) }
                | "prune" -> { cur with prune = bool_v ln v }
                | "max_paths" -> { cur with max_paths = Some (int_v ln v) }
                | "max_len" -> { cur with max_len = Some (int_v ln v) }
                | "cst_sets" ->
                  {
                    cur with
                    cst_config = { cst with Cache.Config.sets = int_v ln v };
                  }
                | "cst_ways" ->
                  {
                    cur with
                    cst_config = { cst with Cache.Config.ways = int_v ln v };
                  }
                | "cst_line_bits" ->
                  {
                    cur with
                    cst_config = { cst with Cache.Config.line_bits = int_v ln v };
                  }
                | "exec_spec_window" ->
                  { cur with exec = { exec with Cpu.Exec.spec_window = int_v ln v } }
                | "exec_quantum" ->
                  { cur with exec = { exec with Cpu.Exec.quantum = int_v ln v } }
                | "exec_victim_quantum" ->
                  {
                    cur with
                    exec = { exec with Cpu.Exec.victim_quantum = int_v ln v };
                  }
                | "exec_fuel" ->
                  { cur with exec = { exec with Cpu.Exec.fuel = int_v ln v } }
                | "exec_protected_range" ->
                  {
                    cur with
                    exec =
                      {
                        exec with
                        Cpu.Exec.protected_range = Some (range_v ln v);
                      };
                  }
                | "domains" -> { cur with domains = Some (int_v ln v) }
                | "cache_dir" -> { cur with cache_dir = Some v }
                | "salt" -> { cur with salt = v }
                | "repo_format" -> (
                  match repo_format_of_string v with
                  | Some f -> { cur with repo_format = f }
                  | None ->
                    stopf ln "bad repo_format %S (use text or binary)" v)
                | "index" -> (
                  match index_mode_of_string v with
                  | Some m -> { cur with index = m }
                  | None -> stopf ln "bad index %S (use off, auto or vp)" v)
                | "index_leaf" -> { cur with index_leaf = int_v ln v }
                | "index_pivots" -> { cur with index_pivots = int_v ln v }
                | "ensemble_tau" -> { cur with ensemble_tau = float_v ln v }
                | "log_level" -> (
                  match Log.level_of_string v with
                  | Some l -> { cur with log_level = l }
                  | None ->
                    stopf ln
                      "bad log_level %S (use debug, info, warn or error)" v)
                | _ -> stopf ln "unknown key %S" key))
        rest;
      validate !c
    with Stop (line, msg) ->
      Error (Err.Parse { file = None; line = Some line; msg }))
  | header :: _ ->
    Error
      (Err.Parse
         {
           file = None;
           line = Some 1;
           msg =
             Printf.sprintf "bad config magic %S (expected \"scaguard-config 1\")"
               header;
         })
  | [] -> Error (Err.Parse { file = None; line = Some 1; msg = "empty config" })

let save ~path c =
  match Persist.write_atomic ~path (to_string c) with
  | () -> Ok ()
  | exception Sys_error msg -> Error (Err.Io { path; msg })

let load ~path =
  match Persist.read_file ~path with
  | exception Sys_error msg -> Error (Err.Io { path; msg })
  | s -> (
    match of_string s with
    | Error (Err.Parse p) -> Error (Err.Parse { p with file = Some path })
    | r -> r)

let pp ppf c = Format.pp_print_string ppf (to_string c)
