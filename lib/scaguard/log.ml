(* The leveled, structured event log.

   Design constraints, in order: (1) observation purity — capturing events
   must never change a verdict bit, so the sink is append-only state that
   nothing on the detection path reads back; (2) a zero-cost disabled path —
   every emission site performs one ref load and branch when the log is off,
   allocating nothing; (3) non-blocking, bounded buffering — events go on a
   lock-free Treiber stack (the same shape as [Obs]'s span log) with a hard
   cap, so a runaway emitter can stall neither the engine workers nor the
   serve drainer, and memory stays bounded; overflow is counted, not waited
   on.  Timestamps come from [Obs.Clock] (monotonic), so event order in the
   JSONL is meaningful even across wall-clock steps.

   Two independent outputs share the emission sites:
   - the capture buffer, drained by [events]/[write] into JSONL artifacts
     ([detect-batch --log-out]);
   - a stderr mirror at a configurable minimum severity, which replaces the
     ad-hoc [Printf.eprintf] calls the CLI and daemon used to make — same
     bytes on stderr, plus the structured record when capture is on. *)

type level = Debug | Info | Warn | Error

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

type event = {
  seq : int;
  ts_ns : int64;
  level : level;
  event : string;
  message : string;
  trace_id : string option;
  fields : (string * Json.t) list;
}

(* ---- switches --------------------------------------------------------------- *)

(* Plain refs, like the [Obs] switches: written by the front-ends before a
   run, read once per emission site. *)
let capture_on = ref false
let capture_level = ref Debug
let stderr_level : level option ref = ref (Some Info)
let default_capacity = 8192
let capacity = ref default_capacity

let enabled () = !capture_on
let set_capture b = capture_on := b
let level () = !capture_level
let set_level l = capture_level := l
let mirror_level () = !stderr_level
let set_mirror_level l = stderr_level := l

let set_capacity n =
  if n < 1 then invalid_arg "Log.set_capacity: capacity must be >= 1";
  capacity := n

(* ---- the bounded sink ------------------------------------------------------- *)

let sink : event list Atomic.t = Atomic.make []
let seq_counter = Atomic.make 0
let length = Atomic.make 0
let dropped_counter = Atomic.make 0

let rec push_event e =
  let cur = Atomic.get sink in
  if not (Atomic.compare_and_set sink cur (e :: cur)) then push_event e

let capture e =
  (* bound first, push second: the length counter may transiently overshoot
     under contention, which errs on the side of dropping — never of
     unbounded growth or blocking *)
  if Atomic.fetch_and_add length 1 < !capacity then push_event e
  else begin
    ignore (Atomic.fetch_and_add length (-1));
    ignore (Atomic.fetch_and_add dropped_counter 1)
  end

let dropped () = Atomic.get dropped_counter

let events () =
  List.sort (fun a b -> compare a.seq b.seq) (Atomic.get sink)

let clear () =
  Atomic.set sink [];
  Atomic.set length 0;
  Atomic.set dropped_counter 0

(* ---- emission --------------------------------------------------------------- *)

let mirror lvl message =
  match !stderr_level with
  | Some min when severity lvl >= severity min ->
    Printf.eprintf "%s\n%!" message
  | _ -> ()

let event ?trace_id ?(fields = []) lvl name message =
  (* the mirror is independent of capture: `serve` banners stay visible on
     stderr whether or not a JSONL artifact was requested *)
  mirror lvl message;
  if !capture_on && severity lvl >= severity !capture_level then
    let trace_id =
      match trace_id with Some _ as t -> t | None -> Obs.trace_id ()
    in
    capture
      {
        seq = Atomic.fetch_and_add seq_counter 1;
        ts_ns = Obs.Clock.now_ns ();
        level = lvl;
        event = name;
        message;
        trace_id;
        fields;
      }

let debug ?trace_id ?fields name fmt =
  Printf.ksprintf (event ?trace_id ?fields Debug name) fmt

let info ?trace_id ?fields name fmt =
  Printf.ksprintf (event ?trace_id ?fields Info name) fmt

let warn ?trace_id ?fields name fmt =
  Printf.ksprintf (event ?trace_id ?fields Warn name) fmt

let error ?trace_id ?fields name fmt =
  Printf.ksprintf (event ?trace_id ?fields Error name) fmt

(* ---- typed Err context ------------------------------------------------------ *)

let err_fields (e : Err.t) =
  match e with
  | Err.Parse { file; line; msg } ->
    [ ("kind", Json.Str "parse") ]
    @ (match file with Some f -> [ ("file", Json.Str f) ] | None -> [])
    @ (match line with
      | Some l -> [ ("line", Json.Num (float_of_int l)) ]
      | None -> [])
    @ [ ("msg", Json.Str msg) ]
  | Err.Io { path; msg } ->
    [ ("kind", Json.Str "io"); ("path", Json.Str path); ("msg", Json.Str msg) ]
  | Err.Invalid_config { field; value; expected } ->
    [
      ("kind", Json.Str "invalid_config");
      ("field", Json.Str field);
      ("value", Json.Str value);
      ("expected", Json.Str expected);
    ]
  | Err.Empty_repository -> [ ("kind", Json.Str "empty_repository") ]

let err ?trace_id ?(prefix = "scaguard") name (e : Err.t) =
  event ?trace_id ~fields:(err_fields e) Error name
    (Printf.sprintf "%s: %s" prefix (Err.to_string e))

(* ---- JSONL ------------------------------------------------------------------ *)

let event_to_json e =
  Json.Obj
    ([
       ("ts_ns", Json.Str (Int64.to_string e.ts_ns));
       ("seq", Json.Num (float_of_int e.seq));
       ("level", Json.Str (level_to_string e.level));
       ("event", Json.Str e.event);
       ("msg", Json.Str e.message);
     ]
    @ (match e.trace_id with
      | Some t -> [ ("trace_id", Json.Str t) ]
      | None -> [])
    @ (match e.fields with
      | [] -> []
      | fields -> [ ("fields", Json.Obj fields) ]))

let to_jsonl evs =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      Json.to_buf buf (event_to_json e);
      Buffer.add_char buf '\n')
    evs;
  (* the overflow marker is part of the record: a truncated log must say so *)
  let d = dropped () in
  if d > 0 then begin
    Json.to_buf buf
      (Json.Obj
         [
           ("level", Json.Str "warn");
           ("event", Json.Str "log.dropped");
           ( "msg",
             Json.Str
               (Printf.sprintf
                  "%d events dropped: capture buffer full (capacity %d)" d
                  !capacity) );
           ("dropped", Json.Num (float_of_int d));
         ]);
    Buffer.add_char buf '\n'
  end;
  Buffer.contents buf

let write ~path =
  match Persist.write_atomic ~path (to_jsonl (events ())) with
  | () -> Ok ()
  | exception Sys_error msg -> Error (Err.Io { path; msg })
