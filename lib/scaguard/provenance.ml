(* Per-verdict decision provenance.

   One record per classified target, capturing *why* the verdict came out
   the way it did: the ensemble path taken (screen z-score vs tau,
   fast-reject or escalate), the repository-index traversal (nodes visited
   and subtrees cut off, with the pooled bounds that justified each), every
   candidate PoC with its lower bound and outcome (scored / pruned by bound
   / abandoned mid-DP), and the final score down to its float bits.

   The capture discipline copies [Obs]: a plain-ref switch read once at
   [Detector.classify_prepared] entry (zero allocation when off — the
   builder simply is not created), a lock-free bounded Treiber-stack sink
   safe from every engine worker domain, and strict observation purity —
   the detection path never reads anything back from here, so verdicts are
   bit-identical with capture on or off (qcheck-asserted).

   The ensemble handoff uses domain-local state: [Detect.Ensemble] notes
   the screen outcome just before escalating into the DTW detector, which
   runs on the same domain and folds the note into its record ([take] on
   finish).  A fast-reject never reaches the detector, so the ensemble
   emits the (tiny) record itself. *)

type ensemble_path = { screen_z : float; tau : float; escalated : bool }

type index_event =
  | Node_visited of { bound : float; members : int }
      (** the search expanded this node: its pooled bound [bound] did not
          beat best-so-far, so its [members]-model subtree stayed live *)
  | Subtree_pruned of { bound : float; members : int }
      (** the best-first frontier's minimum bound exceeded the pruning
          radius: [members] models across every remaining subtree were
          proven losers and skipped without a lower-bound evaluation *)
  | Member_pruned of { bound : float }
      (** a leaf member's per-model screen bound exceeded the radius *)

type outcome =
  | Scored of float  (** full DTW ran (or was resolved exactly) *)
  | Pruned_lb  (** the cheap lower bound proved the pair irrelevant *)
  | Abandoned  (** the DP started but the cutoff ended it mid-matrix *)
  | Pruned
      (** proven irrelevant, bound-vs-abandon indistinguishable (no
          workspace counters were threaded through this call) *)

type candidate = {
  poc : string;
  family : string;
  lb : float option;  (** the precomputed lower bound, when one was used *)
  outcome : outcome;
}

type path = Linear | Indexed | Fast_rejected

type t = {
  seq : int;
  target : string;
  trace_id : string option;
  worker : int;
  path : path;
  ensemble : ensemble_path option;
  index_events : index_event list;  (** in traversal order *)
  candidates : candidate list;  (** in evaluation order *)
  best_matches : (string * string * float) list;
  best_family : string option;
  best_score : float;
  threshold : float;
  duration_ns : int64;
}

(* ---- switch and sink -------------------------------------------------------- *)

let capture_on = ref false
let enabled () = !capture_on
let set_capture b = capture_on := b

let default_capacity = 16384
let capacity = ref default_capacity

let set_capacity n =
  if n < 1 then invalid_arg "Provenance.set_capacity: capacity must be >= 1";
  capacity := n

let sink : t list Atomic.t = Atomic.make []
let seq_counter = Atomic.make 0
let length = Atomic.make 0
let dropped_counter = Atomic.make 0

let rec push_record r =
  let cur = Atomic.get sink in
  if not (Atomic.compare_and_set sink cur (r :: cur)) then push_record r

let emit r =
  if Atomic.fetch_and_add length 1 < !capacity then push_record r
  else begin
    ignore (Atomic.fetch_and_add length (-1));
    ignore (Atomic.fetch_and_add dropped_counter 1)
  end

let dropped () = Atomic.get dropped_counter

let records () =
  List.sort (fun a b -> compare a.seq b.seq) (Atomic.get sink)

let clear () =
  Atomic.set sink [];
  Atomic.set length 0;
  Atomic.set dropped_counter 0

(* Capture exactly the records [f] produces: force the switch on, swap in a
   fresh sink, restore both afterwards.  Other domains must only emit
   records from within [f]'s dynamic extent (true for the serve drainer,
   which owns all execution, and for the CLI) — records pushed concurrently
   from outside it would land in [f]'s capture. *)
let with_capture f =
  let saved_records = Atomic.exchange sink [] in
  let saved_length = Atomic.exchange length 0 in
  let saved_on = !capture_on in
  capture_on := true;
  let restore () =
    capture_on := saved_on;
    let mine = Atomic.exchange sink saved_records in
    ignore (Atomic.exchange length saved_length);
    List.sort (fun a b -> compare a.seq b.seq) mine
  in
  match f () with
  | v -> (v, restore ())
  | exception e ->
    ignore (restore ());
    raise e

(* ---- the ensemble handoff --------------------------------------------------- *)

let ensemble_key : ensemble_path option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let note_ensemble ~screen_z ~tau ~escalated =
  Domain.DLS.get ensemble_key := Some { screen_z; tau; escalated }

let take_ensemble () =
  let cell = Domain.DLS.get ensemble_key in
  let v = !cell in
  cell := None;
  v

(* ---- builder ---------------------------------------------------------------- *)

type builder = {
  b_target : string;
  b_threshold : float;
  b_t0 : int64;
  mutable b_path : path;
  mutable b_index_events : index_event list;  (* reversed *)
  mutable b_candidates : candidate list;  (* reversed *)
}

let start ~target ~threshold =
  {
    b_target = target;
    b_threshold = threshold;
    b_t0 = Monotonic_clock.now ();
    b_path = Linear;
    b_index_events = [];
    b_candidates = [];
  }

let set_path b p = b.b_path <- p
let index_event b ev = b.b_index_events <- ev :: b.b_index_events

let candidate b ~poc ~family ?lb outcome =
  b.b_candidates <- { poc; family; lb; outcome } :: b.b_candidates

let finish b ~best_matches ~best_family ~best_score =
  emit
    {
      seq = Atomic.fetch_and_add seq_counter 1;
      target = b.b_target;
      trace_id = Traceid.get ();
      worker = (Domain.self () :> int);
      path = b.b_path;
      ensemble = take_ensemble ();
      index_events = List.rev b.b_index_events;
      candidates = List.rev b.b_candidates;
      best_matches;
      best_family;
      best_score;
      threshold = b.b_threshold;
      duration_ns = Int64.sub (Monotonic_clock.now ()) b.b_t0;
    }

(* The ensemble's cheap screen rejected the run before any DTW: record the
   decision (and the screen evidence) with the rejected verdict's values —
   no candidates, score 0. *)
let emit_fast_reject ~target ~threshold =
  emit
    {
      seq = Atomic.fetch_and_add seq_counter 1;
      target;
      trace_id = Traceid.get ();
      worker = (Domain.self () :> int);
      path = Fast_rejected;
      ensemble = take_ensemble ();
      index_events = [];
      candidates = [];
      best_matches = [];
      best_family = None;
      best_score = 0.0;
      threshold;
      duration_ns = 0L;
    }

(* ---- JSON codec ------------------------------------------------------------- *)

let path_to_string = function
  | Linear -> "linear"
  | Indexed -> "indexed"
  | Fast_rejected -> "fast_reject"

let path_of_string = function
  | "linear" -> Some Linear
  | "indexed" -> Some Indexed
  | "fast_reject" -> Some Fast_rejected
  | _ -> None

(* Finite floats ride as JSON numbers (%.17g round-trips float64 exactly);
   the non-finite values the screen can produce (z = infinity when there is
   no screen model) ride as tagged strings, since JSON has no spelling for
   them. *)
let jfloat f =
  if Float.is_finite f then Json.Num f
  else
    Json.Str
      (if f > 0.0 then "Infinity"
       else if f < 0.0 then "-Infinity"
       else "NaN")

let jfloat_of = function
  | Json.Num f -> Some f
  | Json.Str "Infinity" -> Some infinity
  | Json.Str "-Infinity" -> Some neg_infinity
  | Json.Str "NaN" -> Some Float.nan
  | _ -> None

let index_event_to_json = function
  | Node_visited { bound; members } ->
    Json.Obj
      [
        ("event", Json.Str "visit");
        ("bound", jfloat bound);
        ("members", Json.Num (float_of_int members));
      ]
  | Subtree_pruned { bound; members } ->
    Json.Obj
      [
        ("event", Json.Str "prune_subtree");
        ("bound", jfloat bound);
        ("members", Json.Num (float_of_int members));
      ]
  | Member_pruned { bound } ->
    Json.Obj [ ("event", Json.Str "prune_member"); ("bound", jfloat bound) ]

let outcome_to_strings = function
  | Scored s -> ("scored", Some s)
  | Pruned_lb -> ("pruned_lb", None)
  | Abandoned -> ("abandoned", None)
  | Pruned -> ("pruned", None)

let candidate_to_json c =
  let outcome, score = outcome_to_strings c.outcome in
  Json.Obj
    ([ ("poc", Json.Str c.poc); ("family", Json.Str c.family) ]
    @ (match c.lb with Some lb -> [ ("lb", jfloat lb) ] | None -> [])
    @ [ ("outcome", Json.Str outcome) ]
    @ (match score with Some s -> [ ("score", jfloat s) ] | None -> []))

let to_json r =
  Json.Obj
    ([
       ("seq", Json.Num (float_of_int r.seq));
       ("target", Json.Str r.target);
     ]
    @ (match r.trace_id with
      | Some t -> [ ("trace_id", Json.Str t) ]
      | None -> [])
    @ [
        ("worker", Json.Num (float_of_int r.worker));
        ("path", Json.Str (path_to_string r.path));
      ]
    @ (match r.ensemble with
      | Some e ->
        [
          ( "ensemble",
            Json.Obj
              [
                ("screen_z", jfloat e.screen_z);
                ("tau", jfloat e.tau);
                ("escalated", Json.Bool e.escalated);
              ] );
        ]
      | None -> [])
    @ (match r.index_events with
      | [] -> []
      | evs -> [ ("index", Json.List (List.map index_event_to_json evs)) ])
    @ [
        ("candidates", Json.List (List.map candidate_to_json r.candidates));
        ( "best",
          Json.Obj
            [
              ( "matches",
                Json.List
                  (List.map
                     (fun (poc, family, score) ->
                       Json.Obj
                         [
                           ("poc", Json.Str poc);
                           ("family", Json.Str family);
                           ("score", jfloat score);
                         ])
                     r.best_matches) );
              ( "family",
                match r.best_family with
                | Some f -> Json.Str f
                | None -> Json.Null );
              ("score", jfloat r.best_score);
              (* exact bits next to the human-readable number, so a record
                 can be audited down to the last ulp even after a lossy
                 re-serialization *)
              ( "score_bits",
                Json.Str (Int64.to_string (Int64.bits_of_float r.best_score))
              );
            ] );
        ("threshold", jfloat r.threshold);
        ("duration_ns", Json.Str (Int64.to_string r.duration_ns));
      ])

(* -- decoding -- *)

let ( let* ) = Result.bind

let fail fmt = Printf.ksprintf (fun m -> Error m) fmt

let get_str k j =
  match Json.member k j with
  | Some (Json.Str s) -> Ok s
  | _ -> fail "provenance: missing or ill-typed field %S" k

let get_float k j =
  match Option.bind (Json.member k j) jfloat_of with
  | Some f -> Ok f
  | None -> fail "provenance: missing or ill-typed field %S" k

let get_int k j =
  match Json.member k j with
  | Some (Json.Num f) when Float.is_integer f -> Ok (int_of_float f)
  | _ -> fail "provenance: missing or ill-typed field %S" k

let get_int64_str k j =
  match Json.member k j with
  | Some (Json.Str s) -> (
    match Int64.of_string_opt s with
    | Some v -> Ok v
    | None -> fail "provenance: field %S is not an int64" k)
  | _ -> fail "provenance: missing or ill-typed field %S" k

let rec map_result f = function
  | [] -> Ok []
  | x :: xs ->
    let* y = f x in
    let* ys = map_result f xs in
    Ok (y :: ys)

let index_event_of_json j =
  let* ev = get_str "event" j in
  let* bound = get_float "bound" j in
  match ev with
  | "visit" ->
    let* members = get_int "members" j in
    Ok (Node_visited { bound; members })
  | "prune_subtree" ->
    let* members = get_int "members" j in
    Ok (Subtree_pruned { bound; members })
  | "prune_member" -> Ok (Member_pruned { bound })
  | other -> fail "provenance: unknown index event %S" other

let candidate_of_json j =
  let* poc = get_str "poc" j in
  let* family = get_str "family" j in
  let lb = Option.bind (Json.member "lb" j) jfloat_of in
  let* outcome_s = get_str "outcome" j in
  let* outcome =
    match outcome_s with
    | "scored" ->
      let* s = get_float "score" j in
      Ok (Scored s)
    | "pruned_lb" -> Ok Pruned_lb
    | "abandoned" -> Ok Abandoned
    | "pruned" -> Ok Pruned
    | other -> fail "provenance: unknown candidate outcome %S" other
  in
  Ok { poc; family; lb; outcome }

let of_json j =
  let* seq = get_int "seq" j in
  let* target = get_str "target" j in
  let trace_id =
    match Json.member "trace_id" j with Some (Json.Str t) -> Some t | _ -> None
  in
  let* worker = get_int "worker" j in
  let* path_s = get_str "path" j in
  let* path =
    match path_of_string path_s with
    | Some p -> Ok p
    | None -> fail "provenance: unknown path %S" path_s
  in
  let* ensemble =
    match Json.member "ensemble" j with
    | None -> Ok None
    | Some e ->
      let* screen_z = get_float "screen_z" e in
      let* tau = get_float "tau" e in
      let* escalated =
        match Json.member "escalated" e with
        | Some (Json.Bool b) -> Ok b
        | _ -> fail "provenance: missing or ill-typed field \"escalated\""
      in
      Ok (Some { screen_z; tau; escalated })
  in
  let* index_events =
    match Json.member "index" j with
    | None -> Ok []
    | Some (Json.List evs) -> map_result index_event_of_json evs
    | Some _ -> fail "provenance: ill-typed field \"index\""
  in
  let* candidates =
    match Json.member "candidates" j with
    | Some (Json.List cs) -> map_result candidate_of_json cs
    | _ -> fail "provenance: missing or ill-typed field \"candidates\""
  in
  let* best =
    match Json.member "best" j with
    | Some (Json.Obj _ as b) -> Ok b
    | _ -> fail "provenance: missing or ill-typed field \"best\""
  in
  let* best_matches =
    match Json.member "matches" best with
    | Some (Json.List ms) ->
      map_result
        (fun m ->
          let* poc = get_str "poc" m in
          let* family = get_str "family" m in
          let* score = get_float "score" m in
          Ok (poc, family, score))
        ms
    | _ -> fail "provenance: missing or ill-typed field \"best.matches\""
  in
  let* best_family =
    match Json.member "family" best with
    | Some (Json.Str f) -> Ok (Some f)
    | Some Json.Null -> Ok None
    | _ -> fail "provenance: missing or ill-typed field \"best.family\""
  in
  (* the bits are authoritative: they survive any number of re-encodings *)
  let* best_score =
    match Json.member "score_bits" best with
    | Some (Json.Str s) -> (
      match Int64.of_string_opt s with
      | Some bits -> Ok (Int64.float_of_bits bits)
      | None -> fail "provenance: field \"best.score_bits\" is not an int64")
    | _ -> get_float "score" best
  in
  let* threshold = get_float "threshold" j in
  let* duration_ns = get_int64_str "duration_ns" j in
  Ok
    {
      seq;
      target;
      trace_id;
      worker;
      path;
      ensemble;
      index_events;
      candidates;
      best_matches;
      best_family;
      best_score;
      threshold;
      duration_ns;
    }

let to_jsonl rs =
  let buf = Buffer.create 1024 in
  List.iter
    (fun r ->
      Json.to_buf buf (to_json r);
      Buffer.add_char buf '\n')
    rs;
  Buffer.contents buf

