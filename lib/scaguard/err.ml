type t =
  | Parse of { file : string option; line : int option; msg : string }
  | Io of { path : string; msg : string }
  | Invalid_config of { field : string; value : string; expected : string }
  | Empty_repository

let to_string = function
  | Parse { file; line; msg } ->
    let where =
      match (file, line) with
      | Some f, Some l -> Printf.sprintf " at %s:%d" f l
      | Some f, None -> Printf.sprintf " in %s" f
      | None, Some l -> Printf.sprintf " at line %d" l
      | None, None -> ""
    in
    Printf.sprintf "parse error%s: %s" where msg
  | Io { path; msg } -> Printf.sprintf "i/o error on %s: %s" path msg
  | Invalid_config { field; value; expected } ->
    Printf.sprintf "invalid %s %s: expected %s" field value expected
  | Empty_repository -> "empty repository: no PoC models to compare against"

let pp ppf e = Format.pp_print_string ppf (to_string e)

let exit_code = function
  | Invalid_config _ | Empty_repository -> 1
  | Parse _ | Io _ -> 2
