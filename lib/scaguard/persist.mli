(** Textual serialization of CST-BBS models and PoC repositories.

    The deployment story of §V builds the repository once and screens
    programs later; persistence makes that real: models round-trip through a
    simple line-oriented format (no external dependencies).

    Every operation comes in two flavours: a [_result] variant returning
    typed {!Err.t} errors — parse failures carry the file name and 1-based
    line number — and a compatibility variant that raises [Failure] (parse)
    or [Sys_error] (IO) like it always has.

    Loaded models carry empty [instrs] lists — similarity comparison only
    needs the normalized token sequences and the CSTs, both of which are
    preserved exactly. *)

val model_to_string : Model.t -> string

val model_of_string_result : ?file:string -> string -> (Model.t, Err.t) result
(** [Error (Parse _)] on malformed input; [?file] is only used to label the
    error location. *)

val model_of_string : string -> Model.t
(** @raise Failure on malformed input. *)

val repository_to_string : Detector.repository -> string

val repository_of_string_result :
  ?file:string -> string -> (Detector.repository, Err.t) result

val repository_of_string : string -> Detector.repository
(** @raise Failure on malformed input. *)

val save_repository_result :
  path:string -> Detector.repository -> (unit, Err.t) result
(** Atomic: the repository is written to a temp file in the destination's
    directory and renamed into place, so a crash mid-write can never leave a
    truncated or corrupt file at [path]. *)

val save_repository : path:string -> Detector.repository -> unit
(** Like {!save_repository_result}.
    @raise Sys_error on IO problems. *)

val load_repository_result :
  path:string -> (Detector.repository, Err.t) result
(** [Error (Io _)] on IO problems, [Error (Parse {file; line; _})] on
    malformed content.  Parsing is strict: every token of a [cst] line must
    be a float — malformed tokens are corruption, not noise. *)

val load_repository : path:string -> Detector.repository
(** @raise Sys_error / Failure on IO or parse problems (parse messages
    include the file name and line number). *)

val save_model_result : path:string -> Model.t -> (unit, Err.t) result
(** One model to one file (the {!Model_cache} entry format); atomic like
    {!save_repository_result}. *)

val save_model : path:string -> Model.t -> unit
(** @raise Sys_error on IO problems. *)

val load_model_result : path:string -> (Model.t, Err.t) result
(** Same strictness as {!load_repository_result}.  The loaded model's tokens
    are re-interned in this process; interned ids are never part of the
    on-disk format. *)

val load_model : path:string -> Model.t
(** @raise Sys_error / Failure on IO or parse problems. *)

(** {1 Shared file plumbing}

    Used by {!Config} (and available to other callers) so every artefact the
    system persists goes through the same atomic writer. *)

val write_atomic : path:string -> string -> unit
(** Write [contents] to a sibling temp file and rename it over [path].
    @raise Sys_error on IO problems. *)

val read_file : path:string -> string
(** Read the whole file.
    @raise Sys_error on IO problems. *)
