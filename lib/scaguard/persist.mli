(** Textual serialization of CST-BBS models and PoC repositories.

    The deployment story of §V builds the repository once and screens
    programs later; persistence makes that real: models round-trip through a
    simple line-oriented format (no external dependencies).

    Loaded models carry empty [instrs] lists — similarity comparison only
    needs the normalized token sequences and the CSTs, both of which are
    preserved exactly. *)

val model_to_string : Model.t -> string

val model_of_string : string -> Model.t
(** @raise Failure on malformed input. *)

val repository_to_string : Detector.repository -> string

val repository_of_string : string -> Detector.repository
(** @raise Failure on malformed input. *)

val save_repository : path:string -> Detector.repository -> unit
(** Atomic: the repository is written to a temp file in the destination's
    directory and renamed into place, so a crash mid-write can never leave a
    truncated or corrupt file at [path]. *)

val load_repository : path:string -> Detector.repository
(** @raise Sys_error / Failure on IO or parse problems.  Parsing is strict:
    every token of a [cst] line must be a float — malformed tokens are
    corruption, not noise. *)

val save_model : path:string -> Model.t -> unit
(** One model to one file (the {!Model_cache} entry format); atomic like
    {!save_repository}. *)

val load_model : path:string -> Model.t
(** @raise Sys_error / Failure on IO or parse problems (same strictness as
    {!load_repository}).  The loaded model's tokens are re-interned in this
    process; interned ids are never part of the on-disk format. *)
