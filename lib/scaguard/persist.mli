(** Serialization of CST-BBS models and PoC repositories — a line-oriented
    text format and a compact versioned binary image.

    The deployment story of §V builds the repository once and screens
    programs later; persistence makes that real.  Two formats serve the two
    halves of that story:

    - {b Text}: simple, diffable, line-oriented.  Tokens, model names and
      families are escaped (['\\'] → ["\\\\"], newline → ["\\n"], the empty
      string → ["\\_"]) so {e any} string round-trips; no writer code path
      can abort the process.
    - {b Binary}: ["SCAGBIN"] magic + version header, an embedded string
      table (interned token ids are process-local, so the image carries its
      own strings), varint-packed token sequences, floats as exact bit
      patterns, a model index (name → blob offset) enabling lazy per-model
      loads, and the per-entry cache-change magnitudes stored inline so
      {!Detector.prepare} is a no-op on load.  See DESIGN.md for the
      byte-level spec.

    Every [load_*] entry point sniffs the leading bytes and accepts either
    format; the binary magic cannot collide with the text headers.

    Every operation comes in two flavours: a [_result] variant returning
    typed {!Err.t} errors — text parse failures carry the file name and
    1-based line number, binary ones the file name and byte offset — and a
    compatibility variant that raises [Failure] (parse) or [Sys_error] (IO)
    like it always has.  No entry point leaks [Unix.Unix_error] or raw
    [failwith]s from the writers.

    Loaded models carry empty [instrs] lists — similarity comparison only
    needs the normalized token sequences and the CSTs, both of which are
    preserved exactly. *)

val model_to_string : Model.t -> string
(** Text encoding.  Total: every model value serializes (escaping handles
    newlines, backslashes and empty tokens). *)

val model_of_string_result : ?file:string -> string -> (Model.t, Err.t) result
(** [Error (Parse _)] on malformed input; [?file] is only used to label the
    error location.  Text format only (file loads sniff, string parsing is
    explicit — use {!model_of_bytes_result} for binary bytes). *)

val model_of_string : string -> Model.t
(** @raise Failure on malformed input. *)

val repository_to_string : Detector.repository -> string
(** Text encoding; total, like {!model_to_string}. *)

val repository_of_string_result :
  ?file:string -> string -> (Detector.repository, Err.t) result

val repository_of_string : string -> Detector.repository
(** @raise Failure on malformed input. *)

(** {1 Binary encoding} *)

val is_binary : string -> bool
(** Whether the bytes start with the binary magic — the same sniff the
    [load_*] functions apply. *)

val repository_to_bytes : ?index:Vpindex.t -> Detector.repository -> string
(** The binary repository image.  Deterministic: a given repository value
    (and index) always produces the same bytes.  [index] embeds the
    serialized repository index ({!Vpindex.to_bytes}) in the image's
    optional index section so loads skip the rebuild; it must have been
    built over exactly this repository. *)

val repository_of_bytes_result :
  ?file:string -> string -> (Detector.repository, Err.t) result
(** Decode a binary image.  [Error (Parse {line = None; _})] with the byte
    offset in the message on truncation, bad magic, unsupported version or
    any other corruption. *)

val repository_of_bytes_prepared_result :
  ?file:string ->
  string ->
  ((Detector.poc * Dtw.summary) list, Err.t) result
(** Like {!repository_of_bytes_result}, but each PoC comes with its
    {!Dtw.summary} rebuilt from the magnitudes stored inline in the image —
    identical to [Dtw.summarize] of the model, with no summarization work. *)

val repository_of_bytes_indexed_result :
  ?file:string ->
  string ->
  ((Detector.poc * Dtw.summary) list * Vpindex.t option, Err.t) result
(** {!repository_of_bytes_prepared_result} plus the repository index when
    the image carries one ([None] for v1 images and v2 images saved without
    an index — absence is never an error, only corruption is). *)

val model_to_bytes : Model.t -> string
(** Single-model binary encoding (the {!Model_cache} entry format). *)

val model_of_bytes_result : ?file:string -> string -> (Model.t, Err.t) result

(** {1 Saving and loading} *)

val save_repository_result :
  path:string -> Detector.repository -> (unit, Err.t) result
(** Text format.  Atomic and durable: the repository is written to a temp
    file in the destination's directory, fsynced, renamed into place, and
    the directory is fsynced — a crash can never leave a truncated or
    corrupt file at [path]. *)

val save_repository_bin_result :
  ?index:Vpindex.t -> path:string -> Detector.repository ->
  (unit, Err.t) result
(** {!save_repository_result}, binary image format.  [index] as in
    {!repository_to_bytes}. *)

val save_repository : path:string -> Detector.repository -> unit
(** Like {!save_repository_result}.
    @raise Sys_error on IO problems. *)

val load_repository_result :
  path:string -> (Detector.repository, Err.t) result
(** Sniffs the format: binary images and text files both load.
    [Error (Io _)] on IO problems, [Error (Parse {file; line; _})] on
    malformed content.  Parsing is strict: every token of a text [cst] line
    must be a float, every binary blob must match its declared length —
    malformed data is corruption, not noise. *)

val load_repository_prepared_result :
  path:string ->
  (Detector.repository * Detector.prepared, Err.t) result
(** {!load_repository_result} plus a ready-to-classify {!Detector.prepared}.
    For binary images the summaries come straight off the file (no
    {!Detector.prepare} work — the instant-start path), and an embedded
    repository index is attached without a rebuild; for text files this
    simply runs {!Detector.prepare} after parsing.  Either way the prepared
    repository classifies bit-identically to [Detector.prepare repo]. *)

val load_repository : path:string -> Detector.repository
(** @raise Sys_error / Failure on IO or parse problems (parse messages
    include the file name and line number / byte offset). *)

val save_model_result : path:string -> Model.t -> (unit, Err.t) result
(** One model to one file, text format; atomic like
    {!save_repository_result}. *)

val save_model_bin_result : path:string -> Model.t -> (unit, Err.t) result
(** {!save_model_result}, binary format. *)

val save_model : path:string -> Model.t -> unit
(** @raise Sys_error on IO problems. *)

val load_model_result : path:string -> (Model.t, Err.t) result
(** Sniffs the format like {!load_repository_result}.  The loaded model's
    tokens are re-interned in this process; interned ids are never part of
    either on-disk format. *)

val load_model : path:string -> Model.t
(** @raise Sys_error / Failure on IO or parse problems. *)

(** {1 Lazy repository images}

    A binary image's model index maps each model name to its blob's offset,
    so individual PoCs load without decoding the rest of the file.  Opening
    an image reads the file once and decodes only the header, string table
    and index; each {!image_load_result} then decodes exactly one blob. *)

type image

val open_image_result : path:string -> (image, Err.t) result
(** [Error (Parse _)] when the file is not a binary repository image (text
    repositories have no index — load them eagerly instead). *)

val image_path : image -> string

val image_size : image -> int
(** Number of models in the index. *)

val image_pocs : image -> (string * string) array
(** [(model name, family)] pairs in file (= repository) order, straight from
    the index — no blob decoding. *)

val image_vpindex : image -> Vpindex.t option
(** The repository index embedded in the image, when present — decoded at
    {!open_image_result} time (it lives before the blobs), so an opened
    image cold-starts straight into indexed classification. *)

val image_load_result :
  image -> name:string -> (Detector.poc, Err.t) result
(** Decode exactly one model's blob.  [Error (Parse _)] when [name] is not
    in the index or its blob is corrupt. *)

val image_load_prepared_result :
  image -> name:string -> (Detector.poc * Dtw.summary, Err.t) result
(** {!image_load_result} plus the summary stored inline in the blob. *)

(** {1 Shared file plumbing}

    Used by {!Config} (and available to other callers) so every artefact the
    system persists goes through the same atomic writer. *)

val bin_version : int
(** The SCAGBIN container version this build writes (readers accept older
    versions too).  Exported as the [format_version] label of the
    [scaguard_build_info] gauge, so a scrape identifies what a process
    would emit. *)

val write_atomic : path:string -> string -> unit
(** Write [contents] to a sibling temp file, fsync it, rename it over
    [path], and fsync the directory — atomic {e and} durable (the data hits
    disk before the rename publishes it).  Failures from the Unix layer
    (including cross-device renames) surface as [Sys_error], never
    [Unix.Unix_error], and the temp file is removed on any failure.
    @raise Sys_error on IO problems. *)

val read_file : path:string -> string
(** Read the whole file.
    @raise Sys_error on IO problems. *)
