type analysis = {
  name : string;
  cfg : Cfg.Graph.t;
  info : Relevant.info;
  attack_graph : Attack_graph.t;
  model : Model.t;
  exec : Cpu.Exec.result;
}

let analyze ?max_paths ?max_len ?cst_config ?measurer ~name ~program exec =
  let cfg = Cfg.Graph.of_program program in
  let info = Relevant.identify cfg exec.Cpu.Exec.collector in
  let attack_graph =
    Attack_graph.build ?max_paths ?max_len cfg ~hpc:info.Relevant.hpc_of_block
      ~relevant:info.Relevant.relevant
  in
  let model = Model.build ?cst_config ?measurer ~name info attack_graph in
  { name; cfg; info; attack_graph; model; exec }

let run_and_analyze ?settings ?init ?victim ?max_paths ?max_len ?cst_config
    program =
  let exec = Cpu.Exec.run ?settings ?init ?victim program in
  analyze ?max_paths ?max_len ?cst_config ~name:(Isa.Program.name program)
    ~program exec

(* ------------------------------------------------------------------ *)
(* Batch front-end.                                                    *)

type job = {
  job_name : string;
  program : Isa.Program.t;
  settings : Cpu.Exec.settings option;
  init : (Cpu.Machine.t -> unit) option;
  victim : (Isa.Program.t * (Cpu.Machine.t -> unit)) option;
  salt : string;
}

let job ?settings ?init ?victim ?(salt = "") ~name program =
  { job_name = name; program; settings; init; victim; salt }

(* Fan [f] over the tasks with one Cst.measurer per worker (the per-block
   CST simulator is reused instead of reallocated), collecting results by
   index.  Task order in the output is the input order regardless of which
   worker ran what, and each task's computation is independent of every
   other's, so results are byte-identical to a sequential loop. *)
let batch ?domains n f =
  let workers = Sutil.Pool.domains_for ?domains n in
  let measurers = Array.init workers (fun _ -> Cst.measurer ()) in
  let out = Array.make n None in
  let probe = if Obs.tracing () then Obs.pool_probe ~stage:"build" else None in
  ignore
    (Sutil.Pool.run ?domains ?probe ~tasks:n (fun ~worker i ->
         out.(i) <- Some (f ~measurer:(measurers.(worker)) i)));
  Array.map (fun o -> Option.get o) out

(* Observe one actual model construction (cache hits never reach this):
   bump the build counter and latency histogram, and emit a sampled
   build:model span tagged with the job name.  [build] is the untimed
   construction; when observability is off this is exactly [build ()]. *)
let timed_build ~name i build =
  if Obs.enabled () then begin
    let t0 = Obs.Clock.now_ns () in
    let result = build () in
    let dur_ns = Obs.Clock.elapsed_ns ~since:t0 in
    if Obs.metrics () then begin
      Obs.Registry.incr Obs.Metrics.models_built_total;
      Obs.Registry.observe Obs.Metrics.model_build_seconds
        (Obs.Clock.ns_to_s dur_ns)
    end;
    if Obs.sampled i then
      Obs.emit_span ~cat:"build" ~args:[ ("model", name) ] ~name:"build:model"
        ~ts_ns:t0 ~dur_ns ();
    result
  end
  else build ()

let analyze_batch ?domains ?max_paths ?max_len ?cst_config inputs =
  batch ?domains (Array.length inputs) (fun ~measurer i ->
      let name, program, exec = inputs.(i) in
      timed_build ~name i (fun () ->
          analyze ?max_paths ?max_len ?cst_config ~measurer ~name ~program exec))

let run_and_analyze_batch ?domains ?max_paths ?max_len ?cst_config jobs =
  batch ?domains (Array.length jobs) (fun ~measurer i ->
      let j = jobs.(i) in
      timed_build ~name:j.job_name i (fun () ->
          let exec =
            Cpu.Exec.run ?settings:j.settings ?init:j.init ?victim:j.victim
              j.program
          in
          analyze ?max_paths ?max_len ?cst_config ~measurer ~name:j.job_name
            ~program:j.program exec))

let build_models_batch ?domains ?cache ?max_paths ?max_len ?cst_config jobs =
  batch ?domains (Array.length jobs) (fun ~measurer i ->
      let j = jobs.(i) in
      let build () =
        timed_build ~name:j.job_name i (fun () ->
            let exec =
              Cpu.Exec.run ?settings:j.settings ?init:j.init ?victim:j.victim
                j.program
            in
            (analyze ?max_paths ?max_len ?cst_config ~measurer
               ~name:j.job_name ~program:j.program exec)
              .model)
      in
      match cache with
      | None -> build ()
      | Some c ->
        let key =
          Model_cache.key ?settings:j.settings ?cst_config ?max_paths ?max_len
            ?victim:(Option.map fst j.victim) ~salt:j.salt ~name:j.job_name
            j.program
        in
        Model_cache.find_or_build c ~key build)
