type analysis = {
  name : string;
  cfg : Cfg.Graph.t;
  info : Relevant.info;
  attack_graph : Attack_graph.t;
  model : Model.t;
  exec : Cpu.Exec.result;
}

let analyze ?max_paths ?max_len ?cst_config ~name ~program exec =
  let cfg = Cfg.Graph.of_program program in
  let info = Relevant.identify cfg exec.Cpu.Exec.collector in
  let attack_graph =
    Attack_graph.build ?max_paths ?max_len cfg ~hpc:info.Relevant.hpc_of_block
      ~relevant:info.Relevant.relevant
  in
  let model = Model.build ?cst_config ~name info attack_graph in
  { name; cfg; info; attack_graph; model; exec }

let run_and_analyze ?settings ?init ?victim ?max_paths ?max_len ?cst_config
    program =
  let exec = Cpu.Exec.run ?settings ?init ?victim program in
  analyze ?max_paths ?max_len ?cst_config ~name:(Isa.Program.name program)
    ~program exec
