(* Wire vocabulary shared by every binary artefact Persist writes.  Two
   invariants matter to callers:

   - floats travel as their 8-byte bit patterns, so a decode . encode
     round-trip is the identity on every value (the text format gets the
     same guarantee from %.17g, at 2-3x the bytes);
   - the reader never raises out of [run]: truncation, overlong varints and
     absurd counts all land in one internal exception that [run] converts
     to a typed Err.Parse with the byte offset. *)

let add_u8 buf b = Buffer.add_char buf (Char.chr (b land 0xff))

(* Unsigned LEB128 over the int's 63-bit pattern: [lsr] shifts zeros in, so
   a negative int (top bit set) encodes as its unsigned pattern in at most
   9 groups of 7 bits — exactly recoverable. *)
let add_uint buf n =
  let rec go n =
    let b = n land 0x7f in
    let rest = n lsr 7 in
    if rest = 0 then add_u8 buf b
    else begin
      add_u8 buf (b lor 0x80);
      go rest
    end
  in
  go n

(* Zigzag: sign goes to bit 0, magnitude shifts up; small |n| stays small.
   The shifts wrap modulo the native int width, which is precisely what
   makes max_int and min_int round-trip. *)
let zigzag n = (n lsl 1) lxor (n asr (Sys.int_size - 1))
let unzigzag z = (z lsr 1) lxor (-(z land 1))
let add_int buf n = add_uint buf (zigzag n)
let add_float buf f = Buffer.add_int64_le buf (Int64.bits_of_float f)

let add_string buf s =
  add_uint buf (String.length s);
  Buffer.add_string buf s

(* ---- reading --------------------------------------------------------------- *)

type reader = { data : string; mutable pos : int; file : string option }

exception Stop of int * string
(* byte offset, message — private to this module; [run] catches it *)

let reader ?file data = { data; pos = 0; file }
let pos r = r.pos
let length r = String.length r.data
let remaining r = String.length r.data - r.pos
let fail r fmt = Printf.ksprintf (fun msg -> raise (Stop (r.pos, msg))) fmt

let u8 r =
  if r.pos >= String.length r.data then fail r "unexpected end of input";
  let b = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  b

let uint r =
  let rec go acc shift =
    if shift >= Sys.int_size then fail r "overlong varint";
    let b = u8 r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go acc (shift + 7)
  in
  go 0 0

let int r = unzigzag (uint r)

let bytes r n =
  if n < 0 || n > remaining r then
    fail r "truncated input: %d bytes requested, %d remain" n (remaining r);
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let float r =
  if remaining r < 8 then fail r "truncated float";
  let bits = String.get_int64_le r.data r.pos in
  r.pos <- r.pos + 8;
  Int64.float_of_bits bits

let string r = bytes r (uint r)

let expect r expected =
  let n = String.length expected in
  if remaining r < n || String.sub r.data r.pos n <> expected then
    fail r "expected %S" expected;
  r.pos <- r.pos + n

(* Every counted element occupies at least one byte downstream, so a count
   larger than what remains is corruption — reject it before Array.init can
   turn it into a giant allocation. *)
let count r ~what =
  let n = uint r in
  if n > remaining r then
    fail r "corrupt %s count %d (only %d bytes remain)" what n (remaining r);
  n

let run ?file parse s =
  let r = reader ?file s in
  match parse r with
  | v -> Ok v
  | exception Stop (off, msg) ->
    Error
      (Err.Parse
         { file; line = None; msg = Printf.sprintf "%s at byte %d" msg off })
