type t = { before : Cache.State.t; after : Cache.State.t }

(* A block with no recorded accesses cannot move the probe cache: its CST is
   the filled starting state on both sides ([AO = 0, IO = 1] exactly, for
   every probe geometry), shared so empty blocks cost no simulation at all.
   The floats are bit-identical to what a full create+fill_all+replay of the
   empty list computes. *)
let trivial =
  let full = Cache.State.make ~ao:0.0 ~io:1.0 in
  { before = full; after = full }

(* Reusable scratch simulator: one per pool worker, so a batch of model
   builds pays one cache allocation per worker instead of one per block.
   Reset + fill_all restores exactly the state (and LRU clock trajectory) a
   fresh create+fill_all produces, so measurements are byte-identical. *)
type measurer = { mutable sim : Cache.Set_assoc.t option }

let measurer () = { sim = None }

let probe_cache measurer config =
  match measurer with
  | Some m -> (
    match m.sim with
    | Some c when Cache.Set_assoc.config c = config ->
      Cache.Set_assoc.reset c;
      c
    | _ ->
      let c = Cache.Set_assoc.create config in
      m.sim <- Some c;
      c)
  | None -> Cache.Set_assoc.create config

let measure ?measurer ?(config = Cache.Config.cst_probe) accesses =
  match accesses with
  | [] -> trivial
  | _ ->
    let cache = probe_cache measurer config in
    Cache.Set_assoc.fill_all cache ~owner:Cache.Owner.System;
    let before = Cache.Set_assoc.state cache in
    List.iter
      (fun (addr, kind) ->
        match kind with
        | Hpc.Collector.Load | Hpc.Collector.Store ->
          ignore (Cache.Set_assoc.access cache ~owner:Cache.Owner.Attacker addr)
        | Hpc.Collector.Flush ->
          (* The probe cache starts "full of data" in the abstract: flushing
             address X removes the line X occupies in that full cache, so a
             line absent from the synthetic fill is materialized (as
             non-attacker data, occupancy-neutral) before invalidation. *)
          if not (Cache.Set_assoc.probe cache addr) then
            ignore (Cache.Set_assoc.access cache ~owner:Cache.Owner.System addr);
          ignore (Cache.Set_assoc.flush cache addr))
      accesses;
    { before; after = Cache.Set_assoc.state cache }

let change_magnitude t =
  Cache.State.change_magnitude ~before:t.before ~after:t.after

let distance a b =
  Cache.State.distance (a.before, a.after) (b.before, b.after)

let pp fmt t =
  Format.fprintf fmt "%a -> %a" Cache.State.pp t.before Cache.State.pp t.after
