type t = { before : Cache.State.t; after : Cache.State.t }

let measure ?(config = Cache.Config.cst_probe) accesses =
  let cache = Cache.Set_assoc.create config in
  Cache.Set_assoc.fill_all cache ~owner:Cache.Owner.System;
  let before = Cache.Set_assoc.state cache in
  List.iter
    (fun (addr, kind) ->
      match kind with
      | Hpc.Collector.Load | Hpc.Collector.Store ->
        ignore (Cache.Set_assoc.access cache ~owner:Cache.Owner.Attacker addr)
      | Hpc.Collector.Flush ->
        (* The probe cache starts "full of data" in the abstract: flushing
           address X removes the line X occupies in that full cache, so a
           line absent from the synthetic fill is materialized (as
           non-attacker data, occupancy-neutral) before invalidation. *)
        if not (Cache.Set_assoc.probe cache addr) then
          ignore (Cache.Set_assoc.access cache ~owner:Cache.Owner.System addr);
        ignore (Cache.Set_assoc.flush cache addr))
    accesses;
  { before; after = Cache.Set_assoc.state cache }

let change_magnitude t =
  Cache.State.change_magnitude ~before:t.before ~after:t.after

let distance a b =
  Cache.State.distance (a.before, a.after) (b.before, b.after)

let pp fmt t =
  Format.fprintf fmt "%a -> %a" Cache.State.pp t.before Cache.State.pp t.after
