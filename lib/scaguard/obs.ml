(* The observability subsystem: a span tracer (Chrome trace-event output)
   plus a metrics registry (Prometheus text output), threaded through the
   build->detect stack.

   Everything is gated on two process-global switches, [tracing] and
   [metrics], both off by default.  Every instrumentation site in the hot
   paths (engine tasks, pool tasks, cache lookups) starts with a read of one
   of these — a single load-and-branch — and does nothing else when the
   switch is off, so the instrumented-off paths allocate nothing and stay
   bit-identical in behavior (asserted by tests and by the bench). *)

(* ---- clock ----------------------------------------------------------------- *)

module Clock = struct
  (* CLOCK_MONOTONIC via bechamel's noalloc stub: immune to NTP steps, so
     span and stage durations can never be negative.  All span/timing
     measurement in the stack goes through here — the one place. *)
  let now_ns : unit -> int64 = Monotonic_clock.now
  let elapsed_ns ~since = Int64.sub (now_ns ()) since
  let ns_to_s ns = Int64.to_float ns /. 1e9
  let ns_to_us ns = Int64.to_float ns /. 1e3
  let elapsed_s ~since = ns_to_s (elapsed_ns ~since)
end

(* ---- minimal JSON emission -------------------------------------------------- *)

module Json = struct
  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let str s = "\"" ^ escape s ^ "\""

  (* JSON numbers must be finite; clamp the rest to null. *)
  let float f =
    if Float.is_finite f then Printf.sprintf "%.17g" f else "null"
end

(* ---- metrics registry ------------------------------------------------------- *)

module Registry = struct
  (* Counter and histogram cells are sharded: each metric holds [shards]
     independent Atomic cells and a domain picks its cell by hashing its id,
     so concurrent workers almost never contend on one cache line.  Shards
     are merged (summed) only at scrape time.  Histogram sums are kept in
     integer nanoseconds-style fixed point (value * 1e9) so they can use
     [Atomic.fetch_and_add] instead of a boxed-float CAS loop. *)

  type counter = { c_shards : int Atomic.t array }

  type gauge = { g_cell : float Atomic.t }

  type histogram = {
    h_bounds : float array; (* ascending finite upper bucket edges *)
    h_counts : int Atomic.t array array; (* [shard].[bucket]; last = +inf *)
    h_sum_e9 : int Atomic.t array; (* per-shard sum, fixed point 1e-9 *)
  }

  type metric = Counter of counter | Gauge of gauge | Histogram of histogram

  type meta = { name : string; labels : (string * string) list; help : string }

  type t = {
    shards : int;
    lock : Mutex.t;
    mutable metrics : (meta * metric) list; (* reversed registration order *)
  }

  let create ?(shards = 8) () =
    if shards < 1 then invalid_arg "Obs.Registry.create: shards must be >= 1";
    (* round up to a power of two so the shard pick is a mask *)
    let rec pow2 n = if n >= shards then n else pow2 (n * 2) in
    { shards = pow2 1; lock = Mutex.create (); metrics = [] }

  let atomic_cells n = Array.init n (fun _ -> Atomic.make 0)

  (* Registration is create-or-get on (name, labels): instrumented code can
     ask for its handles without coordinating who registered first.  Only
     registration takes the lock — updates never do. *)
  let register t name labels help make =
    Mutex.lock t.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () ->
        match
          List.find_opt
            (fun (m, _) -> m.name = name && m.labels = labels)
            t.metrics
        with
        | Some (_, metric) -> metric
        | None ->
          let metric = make () in
          t.metrics <- ({ name; labels; help }, metric) :: t.metrics;
          metric)

  let kind_error name expected =
    invalid_arg
      (Printf.sprintf "Obs.Registry: metric %S already registered as a %s" name
         expected)

  let counter t ?(help = "") ?(labels = []) name =
    match
      register t name labels help (fun () ->
          Counter { c_shards = atomic_cells t.shards })
    with
    | Counter c -> c
    | Gauge _ | Histogram _ -> kind_error name "non-counter"

  let gauge t ?(help = "") ?(labels = []) name =
    match
      register t name labels help (fun () -> Gauge { g_cell = Atomic.make 0.0 })
    with
    | Gauge g -> g
    | Counter _ | Histogram _ -> kind_error name "non-gauge"

  let histogram t ?(help = "") ?(labels = []) ~buckets name =
    let ok = ref (Array.length buckets > 0) in
    Array.iteri
      (fun i b ->
        if not (Float.is_finite b) then ok := false;
        if i > 0 && b <= buckets.(i - 1) then ok := false)
      buckets;
    if not !ok then
      invalid_arg
        "Obs.Registry.histogram: buckets must be finite and strictly ascending";
    match
      register t name labels help (fun () ->
          Histogram
            {
              h_bounds = Array.copy buckets;
              h_counts =
                Array.init t.shards (fun _ ->
                    atomic_cells (Array.length buckets + 1));
              h_sum_e9 = atomic_cells t.shards;
            })
    with
    | Histogram h -> h
    | Counter _ | Gauge _ -> kind_error name "non-histogram"

  let add c n =
    ignore
      (Atomic.fetch_and_add
         c.c_shards.((Domain.self () :> int) land (Array.length c.c_shards - 1))
         n)

  let incr c = add c 1

  let set_gauge g v = Atomic.set g.g_cell v

  let observe h v =
    let nshards = Array.length h.h_counts in
    let s = (Domain.self () :> int) land (nshards - 1) in
    let nb = Array.length h.h_bounds in
    (* linear scan: bucket ladders are ~20 entries and almost always resolve
       in the first few *)
    let rec bucket i = if i >= nb || v <= h.h_bounds.(i) then i else bucket (i + 1) in
    ignore (Atomic.fetch_and_add (h.h_counts.(s)).(bucket 0) 1);
    ignore (Atomic.fetch_and_add h.h_sum_e9.(s) (int_of_float (v *. 1e9)))

  (* -- scrape ---------------------------------------------------------------- *)

  type hist_snapshot = {
    bounds : float array;
    counts : int array; (* per bucket, non-cumulative; last = +inf bucket *)
    sum : float;
    count : int;
  }

  type value =
    | Counter_value of int
    | Gauge_value of float
    | Histogram_value of hist_snapshot

  type snapshot_entry = {
    entry_name : string;
    entry_labels : (string * string) list;
    entry_help : string;
    entry_value : value;
  }

  type snapshot = snapshot_entry list

  let merge_counter c = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c.c_shards

  let merge_histogram h =
    let nb = Array.length h.h_bounds + 1 in
    let counts = Array.make nb 0 in
    Array.iter
      (fun shard ->
        Array.iteri (fun i a -> counts.(i) <- counts.(i) + Atomic.get a) shard)
      h.h_counts;
    let sum_e9 =
      Array.fold_left (fun acc a -> acc + Atomic.get a) 0 h.h_sum_e9
    in
    {
      bounds = Array.copy h.h_bounds;
      counts;
      sum = float_of_int sum_e9 /. 1e9;
      count = Array.fold_left ( + ) 0 counts;
    }

  let snapshot t =
    let entries =
      Mutex.lock t.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.lock)
        (fun () -> List.rev t.metrics)
    in
    List.map
      (fun (m, metric) ->
        {
          entry_name = m.name;
          entry_labels = m.labels;
          entry_help = m.help;
          entry_value =
            (match metric with
            | Counter c -> Counter_value (merge_counter c)
            | Gauge g -> Gauge_value (Atomic.get g.g_cell)
            | Histogram h -> Histogram_value (merge_histogram h));
        })
      entries

  let reset t =
    Mutex.lock t.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () ->
        List.iter
          (fun (_, metric) ->
            match metric with
            | Counter c -> Array.iter (fun a -> Atomic.set a 0) c.c_shards
            | Gauge g -> Atomic.set g.g_cell 0.0
            | Histogram h ->
              Array.iter (Array.iter (fun a -> Atomic.set a 0)) h.h_counts;
              Array.iter (fun a -> Atomic.set a 0) h.h_sum_e9)
          t.metrics)

  (* -- Prometheus text exposition -------------------------------------------- *)

  let prom_escape s =
    String.concat ""
      (List.map
         (function
           | '\\' -> "\\\\" | '"' -> "\\\"" | '\n' -> "\\n" | c -> String.make 1 c)
         (List.init (String.length s) (String.get s)))

  (* HELP text has a smaller escape set than label values: only the
     backslash and the line feed — a double quote is literal there. *)
  let prom_help_escape s =
    String.concat ""
      (List.map
         (function '\\' -> "\\\\" | '\n' -> "\\n" | c -> String.make 1 c)
         (List.init (String.length s) (String.get s)))

  let prom_labels = function
    | [] -> ""
    | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v))
             labels)
      ^ "}"

  let prom_float f =
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.9g" f

  let to_prometheus (snap : snapshot) =
    let buf = Buffer.create 1024 in
    let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    let seen_header = Hashtbl.create 16 in
    let header name kind help =
      if not (Hashtbl.mem seen_header name) then begin
        Hashtbl.add seen_header name ();
        if help <> "" then add "# HELP %s %s\n" name (prom_help_escape help);
        add "# TYPE %s %s\n" name kind
      end
    in
    List.iter
      (fun e ->
        match e.entry_value with
        | Counter_value v ->
          header e.entry_name "counter" e.entry_help;
          add "%s%s %d\n" e.entry_name (prom_labels e.entry_labels) v
        | Gauge_value v ->
          header e.entry_name "gauge" e.entry_help;
          add "%s%s %s\n" e.entry_name (prom_labels e.entry_labels) (prom_float v)
        | Histogram_value h ->
          header e.entry_name "histogram" e.entry_help;
          let cum = ref 0 in
          Array.iteri
            (fun i c ->
              cum := !cum + c;
              let le =
                if i < Array.length h.bounds then prom_float h.bounds.(i)
                else "+Inf"
              in
              add "%s_bucket%s %d\n" e.entry_name
                (prom_labels (e.entry_labels @ [ ("le", le) ]))
                !cum)
            h.counts;
          add "%s_sum%s %s\n" e.entry_name
            (prom_labels e.entry_labels)
            (prom_float h.sum);
          add "%s_count%s %d\n" e.entry_name (prom_labels e.entry_labels) h.count)
      snap;
    Buffer.contents buf
end

(* ---- global switches -------------------------------------------------------- *)

(* Plain mutable cells: each instrumentation site reads one of these once —
   a single load and branch.  They are written only from the front-ends
   (CLI, bench, tests) before and after a run, never concurrently with it. *)
let tracing_on = ref false
let metrics_on = ref false
let sample_every = ref 1

let tracing () = !tracing_on
let metrics () = !metrics_on
let enabled () = !tracing_on || !metrics_on
let set_tracing b = tracing_on := b
let set_metrics b = metrics_on := b

let set_span_sample_rate r =
  if Float.is_nan r || r < 0.0 || r > 1.0 then
    invalid_arg "Obs.set_span_sample_rate: rate must be in [0, 1]";
  sample_every := (if r <= 0.0 then 0 else int_of_float (Float.round (1.0 /. r)))

let span_sample_rate () =
  if !sample_every = 0 then 0.0 else 1.0 /. float_of_int !sample_every

let sampled i =
  !tracing_on && !sample_every > 0 && i mod !sample_every = 0

(* ---- trace-id propagation --------------------------------------------------- *)

(* The ambient trace id: one opaque client-chosen string correlating a wire
   request (or a CLI batch) with every span, log event and provenance record
   it produces.  The cell itself lives in [Traceid], at the bottom of the
   module order, so [Provenance] (which sits below us) can stamp it too;
   these re-exports are the public API (the serve drainer sets it around
   each request; the CLI sets it once per batch). *)
let set_trace_id = Traceid.set
let trace_id = Traceid.get

(* ---- spans ------------------------------------------------------------------ *)

type span = {
  name : string;
  cat : string;
  tid : int;
  ts_ns : int64;
  dur_ns : int64;
  args : (string * string) list;
}

(* Completed spans go on a Treiber stack: lock-free push from any domain,
   drained and time-sorted only when the trace is written. *)
let span_log : span list Atomic.t = Atomic.make []

let rec push_span s =
  let cur = Atomic.get span_log in
  if not (Atomic.compare_and_set span_log cur (s :: cur)) then push_span s

let emit_span ?(cat = "scaguard") ?tid ?(args = []) ~name ~ts_ns ~dur_ns () =
  if !tracing_on then
    let tid = match tid with Some t -> t | None -> (Domain.self () :> int) in
    (* stamp the ambient trace id so one grep of the trace finds every span
       of a given request — the span side of end-to-end correlation *)
    let args =
      match Traceid.get () with
      | Some t -> ("trace_id", t) :: args
      | None -> args
    in
    push_span { name; cat; tid; ts_ns; dur_ns; args }

let with_span ?cat ?tid ?args name f =
  if !tracing_on then begin
    let t0 = Clock.now_ns () in
    let finally () =
      emit_span ?cat ?tid ?args ~name ~ts_ns:t0
        ~dur_ns:(Clock.elapsed_ns ~since:t0) ()
    in
    Fun.protect ~finally f
  end
  else f ()

let spans () =
  List.sort
    (fun a b ->
      match Int64.compare a.ts_ns b.ts_ns with
      | 0 -> compare (a.tid, a.name) (b.tid, b.name)
      | c -> c)
    (Atomic.get span_log)

let clear_spans () = Atomic.set span_log []

(* ---- trace writer ----------------------------------------------------------- *)

module Trace_writer = struct
  (* Chrome trace-event format, "X" (complete) events with microsecond
     timestamps — loads directly in chrome://tracing and ui.perfetto.dev. *)

  let event buf (s : span) =
    let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    add "{\"name\":%s,\"cat\":%s,\"ph\":\"X\",\"pid\":1,\"tid\":%d" (Json.str s.name)
      (Json.str s.cat) s.tid;
    add ",\"ts\":%s,\"dur\":%s" (Json.float (Clock.ns_to_us s.ts_ns))
      (Json.float (Clock.ns_to_us s.dur_ns));
    (match s.args with
    | [] -> ()
    | args ->
      add ",\"args\":{%s}"
        (String.concat ","
           (List.map (fun (k, v) -> Json.str k ^ ":" ^ Json.str v) args)));
    add "}"

  let to_json spans =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    List.iteri
      (fun i s ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf "\n  ";
        event buf s)
      spans;
    Buffer.add_string buf "\n]}\n";
    Buffer.contents buf

  let write ~path spans =
    match Persist.write_atomic ~path (to_json spans) with
    | () -> Ok ()
    | exception Sys_error msg -> Error (Err.Io { path; msg })
end

(* ---- the scaguard metric set ------------------------------------------------ *)

let default = Registry.create ()

module Metrics = struct
  let c name help = Registry.counter default ~help name

  let batches_total =
    c "scaguard_engine_batches_total" "Batch classification runs."
  let targets_total =
    c "scaguard_engine_targets_total" "Target models classified."
  let pairs_total =
    c "scaguard_engine_pairs_total"
      "Model pairs considered (targets x repository)."
  let cells_total = c "scaguard_engine_dp_cells_total" "DTW DP cells computed."
  let pairs_pruned_lb_total =
    c "scaguard_engine_pairs_pruned_lb_total"
      "Pairs skipped without DP: a lower bound proved them irrelevant."
  let pairs_abandoned_total =
    c "scaguard_engine_pairs_abandoned_total"
      "Pairs whose DP was cut short by the cutoff."
  let cells_saved_total =
    c "scaguard_engine_dp_cells_saved_total" "DP cells pruning avoided."
  let lb_evals_total =
    c "scaguard_engine_lb_evals_total"
      "Lower-bound evaluations (the work the repository index shrinks)."
  let pairs_pruned_index_total =
    c "scaguard_engine_pairs_pruned_index_total"
      "Pairs skipped by the repository index before any lower bound ran."
  let index_nodes_visited_total =
    c "scaguard_engine_index_nodes_visited_total"
      "Repository-index tree nodes expanded during search."
  let models_built_total =
    c "scaguard_models_built_total"
      "CST-BBS models built (cache hits not included)."
  let cache_hits_total = c "scaguard_cache_hits_total" "Model cache hits."
  let cache_misses_total = c "scaguard_cache_misses_total" "Model cache misses."
  let cache_stale_total =
    c "scaguard_cache_stale_total" "Model cache entries dropped as corrupt."

  (* -- the two-tier ensemble detector (Detect.Ensemble) ------------------- *)

  let ensemble_screened_total =
    c "scaguard_ensemble_screened_total"
      "Runs screened by the ensemble's HPC-feature fast path."
  let ensemble_fast_rejects_total =
    c "scaguard_ensemble_fast_rejects_total"
      "Runs the fast path rejected as benign (no DTW paid)."
  let ensemble_slow_path_total =
    c "scaguard_ensemble_slow_path_total"
      "Runs escalated to the DTW slow path."
  let ensemble_slow_confirms_total =
    c "scaguard_ensemble_slow_confirms_total"
      "Slow-path classifications that confirmed an attack."

  (* One exponential 1us..10s ladder serves every latency histogram: DTW
     pairs sit at the bottom, end-to-end stages at the top. *)
  let latency_buckets =
    [|
      1e-6; 2e-6; 5e-6; 1e-5; 2e-5; 5e-5; 1e-4; 2e-4; 5e-4; 1e-3; 2e-3; 5e-3;
      1e-2; 2e-2; 5e-2; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0;
    |]

  let h name help =
    Registry.histogram default ~help ~buckets:latency_buckets name

  let dtw_pair_seconds =
    h "scaguard_dtw_pair_seconds"
      "Per-pair DTW scoring latency (mean across one verdict's pairs)."
  let model_build_seconds =
    h "scaguard_model_build_seconds"
      "Per-model build latency (execute + identify + graph + measure)."
  let verdict_seconds =
    h "scaguard_verdict_seconds"
      "End-to-end per-target classification latency."

  let stage_seconds ~stage =
    Registry.histogram default
      ~help:"Wall-clock latency of one pipeline stage."
      ~labels:[ ("stage", stage) ] ~buckets:latency_buckets
      "scaguard_stage_seconds"

  (* -- the serve daemon (Scaguard.Server) -------------------------------- *)

  let server_requests_total ~op =
    Registry.counter default
      ~help:"Requests the serve daemon completed, by protocol verb."
      ~labels:[ ("op", op) ] "scaguard_server_requests_total"

  let server_rejected_total ~reason =
    Registry.counter default
      ~help:
        "Requests the serve daemon rejected without executing them: \
         queue-full backpressure (busy), expired deadlines (deadline), \
         drain-phase refusals (unavailable), unparseable frames (parse)."
      ~labels:[ ("reason", reason) ] "scaguard_server_rejected_total"

  let server_queue_depth =
    Registry.gauge default
      ~help:"Requests currently waiting in the serve daemon's bounded queue."
      "scaguard_server_queue_depth"

  let server_streamed_verdicts_total =
    Registry.counter default
      ~help:"Verdict frames the serve daemon streamed back to clients."
      "scaguard_server_streamed_verdicts_total"

  let server_request_seconds ~op =
    Registry.histogram default
      ~help:
        "End-to-end request latency in the serve daemon (arrival at the \
         framer to final reply frame), by protocol verb."
      ~labels:[ ("op", op) ] ~buckets:latency_buckets
      "scaguard_server_request_seconds"

  (* -- process identity --------------------------------------------------- *)

  let build_info ~version ~format_version =
    Registry.gauge default
      ~help:
        "Build identity of this process (CLI version and binary repository \
         format version as labels); the value is always 1."
      ~labels:
        [ ("version", version); ("format_version", format_version) ]
      "scaguard_build_info"

  let uptime_seconds =
    Registry.gauge default
      ~help:"Seconds this process has been up, on the monotonic clock."
      "scaguard_uptime_seconds"
end

(* Stamp the process-identity gauges before an exposition is rendered: the
   constant-1 [scaguard_build_info] (version/format_version as labels, the
   node_exporter convention) and the uptime gauge measured from [start_ns]
   on the monotonic clock.  Both [serve] and [detect-batch] call this so
   every exposition carries the same identity, regardless of transport. *)
let export_build_info ~version ~format_version ~start_ns () =
  Registry.set_gauge (Metrics.build_info ~version ~format_version) 1.0;
  Registry.set_gauge Metrics.uptime_seconds
    (Clock.ns_to_s (Clock.elapsed_ns ~since:start_ns))

let snapshot () = Registry.snapshot default

let write_metrics ~path =
  match Persist.write_atomic ~path (Registry.to_prometheus (snapshot ())) with
  | () -> Ok ()
  | exception Sys_error msg -> Error (Err.Io { path; msg })

let reset () =
  clear_spans ();
  Registry.reset default

(* ---- pool probe ------------------------------------------------------------- *)

(* Worker indices are dense and small (<= domain count), so plain arrays
   indexed by worker hold the per-worker clock state; each cell is touched
   only by its own worker.  [max_probe_workers] is a safety bound far above
   any real pool. *)
let max_probe_workers = 1024

let pool_probe ~stage =
  if not !tracing_on then None
  else begin
    let starts = Array.make max_probe_workers 0L in
    let last_stop = Array.make max_probe_workers 0L in
    let task_start ~worker _i =
      if worker < max_probe_workers then starts.(worker) <- Clock.now_ns ()
    in
    let task_stop ~worker i =
      if worker < max_probe_workers then begin
        let stop = Clock.now_ns () in
        let start = starts.(worker) in
        if sampled i then begin
          (* queue-wait: the gap between this worker's previous task and
             this one (claim contention, scheduling, GC) *)
          let prev = last_stop.(worker) in
          if prev <> 0L && Int64.compare prev start < 0 then
            emit_span ~cat:"pool" ~tid:worker
              ~args:[ ("stage", stage) ]
              ~name:(stage ^ ":wait") ~ts_ns:prev
              ~dur_ns:(Int64.sub start prev) ();
          emit_span ~cat:"pool" ~tid:worker
            ~args:[ ("stage", stage); ("task", string_of_int i) ]
            ~name:(stage ^ ":task") ~ts_ns:start
            ~dur_ns:(Int64.sub stop start) ()
        end;
        last_stop.(worker) <- stop
      end
    in
    Some { Sutil.Pool.task_start; task_stop }
  end
