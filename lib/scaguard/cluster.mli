(** Unsupervised grouping of attack behavior models.

    A repository curator collects PoCs without trusting their labels;
    single-linkage clustering over the DTW similarity (two models join a
    cluster when {e some} pair across the clusters reaches the threshold)
    recovers the attack families directly from behavior — and a model that
    lands in no cluster is a candidate new family.

    Everything here is O(n²) model comparisons (full DTW, no pruning —
    clustering needs the whole similarity matrix, not just the best match);
    curation is an offline, repository-build-time activity, unlike the
    latency-sensitive screening paths in {!Detector} and {!Engine}. *)

val pairwise :
  ?alpha:float -> Model.t list -> (Model.t * Model.t * float) list
(** Similarity of every unordered model pair. *)

val by_similarity :
  ?threshold:float -> ?alpha:float -> Model.t list -> Model.t list list
(** Connected components of the "similarity >= threshold" graph
    (single-linkage agglomerative clustering cut at the threshold).
    [threshold] defaults to {!Detector.default_threshold}.  Clusters are
    returned largest-first; singletons last. *)

val medoid : ?alpha:float -> Model.t list -> Model.t
(** The model with the highest mean similarity to the rest — the cluster's
    most representative member, used to pick one repository PoC out of many
    collected samples.  @raise Invalid_argument on []. *)

val curate_repository :
  ?threshold:float -> ?alpha:float -> (string * Model.t) list ->
  Detector.repository
(** Repository curation from a pile of (family, model) samples: cluster by
    behavior, take each cluster's medoid, and label it with the cluster's
    majority family.  Keeps the repository small (one entry per discovered
    behavior group) without hand-picking PoCs. *)
