(** Low-level binary encoding primitives for the {!Persist} binary formats.

    A tiny, dependency-free wire vocabulary: unsigned LEB128 varints,
    zigzag-encoded signed ints, IEEE-754 doubles as their exact 8-byte
    little-endian bit patterns, and length-prefixed strings.  Floats
    round-trip bit-for-bit (no decimal detour), which is what makes the
    binary repository image byte-identical to the text path after a
    round-trip.

    The writer side appends to a caller-supplied [Buffer]; the reader side
    walks a [string] with a cursor and reports every malformed input —
    truncation, overlong varints, counts that exceed the remaining bytes —
    as a typed {!Err.Parse} carrying the file name and the byte offset, via
    {!run}.  No reader function ever raises out of {!run}. *)

(** {1 Writing} *)

val add_u8 : Buffer.t -> int -> unit
(** One byte (the low 8 bits of the argument). *)

val add_uint : Buffer.t -> int -> unit
(** Unsigned LEB128.  The argument's 63-bit pattern is encoded, so any
    OCaml [int] (including negative bit patterns) round-trips; intended for
    counts and ids, which are non-negative. *)

val add_int : Buffer.t -> int -> unit
(** Zigzag + LEB128: small magnitudes of either sign stay short, and
    [max_int] / [min_int] round-trip exactly. *)

val add_float : Buffer.t -> float -> unit
(** The 8-byte little-endian IEEE-754 bit pattern — exact for every float,
    including NaNs, infinities and signed zeros. *)

val add_string : Buffer.t -> string -> unit
(** [add_uint length] followed by the raw bytes. *)

(** {1 Reading} *)

type reader
(** A cursor over an immutable byte string. *)

val reader : ?file:string -> string -> reader

val pos : reader -> int
(** Current byte offset. *)

val length : reader -> int
(** Total byte length of the underlying string. *)

val remaining : reader -> int

val u8 : reader -> int
val uint : reader -> int
val int : reader -> int
val float : reader -> float
val string : reader -> string

val bytes : reader -> int -> string
(** The next [n] raw bytes. *)

val expect : reader -> string -> unit
(** Consume exactly the given bytes or fail. *)

val count : reader -> what:string -> int
(** An element count: a {!uint} additionally checked against the bytes
    remaining (every counted element occupies at least one byte), so a
    corrupt length can never provoke a huge allocation. *)

val fail : reader -> ('a, unit, string, 'b) format4 -> 'a
(** Abort the parse with a message anchored at the current offset.  Only
    meaningful inside a {!run} callback. *)

val run : ?file:string -> (reader -> 'a) -> string -> ('a, Err.t) result
(** Run a parser over the whole string.  Any {!fail} (or malformed
    primitive) becomes [Error (Err.Parse { file; line = None; msg })] with
    the byte offset in the message; nothing escapes as an exception. *)
