(** Attack-relevant graph construction — Algorithm 1 of the paper.

    Starting from the CFG and the attack-relevant blocks:
    1. back edges are removed (loop-free graph);
    2. every block carries its HPC value;
    3. for each pair of relevant blocks, the connecting CFG paths that avoid
       other relevant blocks are scored by the mean interior HPC value (MAX
       for a direct edge) and the best one becomes a weighted edge;
    4. a maximum spanning tree (forest, for disconnected inputs) picks the
       most attack-correlated connections;
    5. each chosen edge's underlying path is restored, so interior blocks
       that conduct necessary-but-cache-silent work rejoin the graph. *)

type t = {
  relevant : int list;           (** the input relevant blocks *)
  tree_edges : (int * int * float * int list) list;
    (** spanning-forest edges: (u, v, weight, restored CFG path) *)
  nodes : int list;              (** all blocks of the attack-relevant graph
                                     (relevant blocks + restored interiors) *)
  edges : (int * int) list;      (** restored pairwise CFG edges *)
}

val build :
  ?max_paths:int -> ?max_len:int -> Cfg.Graph.t ->
  hpc:float array -> relevant:int list -> t
(** Bounds are passed through to {!Cfg.Paths.best_between}. *)
