(* The ambient trace id, at the bottom of the module order so that every
   emitter can stamp it: [Obs] spans, [Log] events and [Provenance] records
   all read this one cell (Obs re-exports the accessors as the public
   API).  An Atomic because engine worker domains read it while the driving
   thread owns the writes. *)

let cell : string option Atomic.t = Atomic.make None
let set t = Atomic.set cell t
let get () = Atomic.get cell
