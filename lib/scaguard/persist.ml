(* Two on-disk formats, one loader.

   Text (the original line-oriented format, kept for diffability and
   backward compatibility):

     cstbbs 1
     name <model name>
     entry <block> <first_time>
     cst <ao> <io> <ao'> <io'>
     tokens <count>
     <one normalized token per line>
     ...repeat entry...
     end

   Repositories wrap models with `poc <family>` headers.  Tokens, model
   names and families are escaped ('\' -> "\\", newline -> "\n", the empty
   string -> "\_") so any string round-trips and no writer code path can
   abort the process.

   Binary (the compact repository image, see DESIGN.md for the byte-level
   spec):

     "SCAGBIN" <version u8> <kind u8 'R'|'M'>
     string table: count + length-prefixed strings (tokens, names, families)
     model index:  count + per model (name id, family id, blob length)
     model blobs:  entries (block, first_time, 4 CST doubles, token ids)
                   followed by the per-entry cache-change magnitudes

   Floats travel as exact bit patterns and token ids point into the
   embedded string table (interned ids are process-local and never leave
   the process), so text -> binary -> text is byte-identical.  The index
   maps each model to its blob's offset, which is what makes lazy per-model
   loading ([image]) possible, and the inline magnitudes are what let
   [load_repository_prepared_result] hand back a summarized repository with
   no {!Detector.prepare} work at all.

   Loads sniff the leading bytes, so every [load_*] entry point accepts
   either format. *)

let buf_add = Buffer.add_string

(* -- escaping ---------------------------------------------------------------- *)

(* The text format is line-oriented, so embedded newlines (and, to keep the
   code unambiguous, backslashes) are escaped; a token that IS the empty
   string would vanish into the blank-line filter, so it gets a dedicated
   two-character spelling. *)
let escape_line s =
  if s = "" then "\\_"
  else if String.exists (fun ch -> ch = '\\' || ch = '\n') s then begin
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (function
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  end
  else s

let entry_to_buffer buf (e : Model.entry) =
  buf_add buf (Printf.sprintf "entry %d %d\n" e.Model.block e.Model.first_time);
  let b = e.Model.cst.Cst.before and a = e.Model.cst.Cst.after in
  buf_add buf
    (Printf.sprintf "cst %.17g %.17g %.17g %.17g\n" b.Cache.State.ao
       b.Cache.State.io a.Cache.State.ao a.Cache.State.io);
  buf_add buf (Printf.sprintf "tokens %d\n" (Array.length e.Model.normalized));
  Array.iter
    (fun tok ->
      buf_add buf (escape_line tok);
      Buffer.add_char buf '\n')
    e.Model.normalized

let model_to_buffer buf (m : Model.t) =
  buf_add buf "cstbbs 1\n";
  buf_add buf (Printf.sprintf "name %s\n" (escape_line m.Model.name));
  List.iter (entry_to_buffer buf) m.Model.entries;
  buf_add buf "end\n"

let model_to_string m =
  let buf = Buffer.create 1024 in
  model_to_buffer buf m;
  Buffer.contents buf

let repository_to_string (repo : Detector.repository) =
  let buf = Buffer.create 4096 in
  buf_add buf "scaguard-repository 1\n";
  List.iter
    (fun (p : Detector.poc) ->
      buf_add buf (Printf.sprintf "poc %s\n" (escape_line p.Detector.family));
      model_to_buffer buf p.Detector.model)
    repo;
  Buffer.contents buf

(* -- text parsing ------------------------------------------------------------ *)

(* Parse failures carry the 1-based line number of the offending line in the
   original text (blank lines count, even though the cursor skips them), so
   [Err.Parse] can point at the exact spot in a saved file. *)
exception Parse_stop of int option * string

let stop ?line fmt = Printf.ksprintf (fun msg -> raise (Parse_stop (line, msg))) fmt

(* [lines] keeps only non-empty lines (blank-line noise is tolerated) but each
   is paired with its original 1-based line number for error reporting. *)
type cursor = { lines : (int * string) array; mutable pos : int }

let peek c =
  if c.pos < Array.length c.lines then Some (snd c.lines.(c.pos)) else None

(* Line number to report for "ran off the end": one past the last kept line. *)
let eof_line c =
  let n = Array.length c.lines in
  if n = 0 then Some 1 else Some (fst c.lines.(n - 1) + 1)

(* Line number of the line the cursor last consumed. *)
let here c =
  if c.pos = 0 then Some 1 else Some (fst c.lines.(c.pos - 1))

let next c =
  match peek c with
  | Some l ->
    c.pos <- c.pos + 1;
    l
  | None -> stop ?line:(eof_line c) "unexpected end of input"

(* Inverse of [escape_line]; a dangling or unknown escape is corruption. *)
let unescape_line c line =
  if line = "\\_" then ""
  else if not (String.contains line '\\') then line
  else begin
    let n = String.length line in
    let b = Buffer.create n in
    let i = ref 0 in
    while !i < n do
      (match line.[!i] with
      | '\\' ->
        if !i + 1 >= n then stop ?line:(here c) "dangling escape in %S" line;
        incr i;
        (match line.[!i] with
        | '\\' -> Buffer.add_char b '\\'
        | 'n' -> Buffer.add_char b '\n'
        | ch -> stop ?line:(here c) "bad escape '\\%c' in %S" ch line)
      | ch -> Buffer.add_char b ch);
      incr i
    done;
    Buffer.contents b
  end

let expect_prefix c prefix =
  let l = next c in
  let n = String.length prefix in
  if String.length l < n || String.sub l 0 n <> prefix then
    stop ?line:(here c) "expected %S, got %S" prefix l;
  String.sub l n (String.length l - n)

let parse_entry c =
  let header = expect_prefix c "entry " in
  let block, first_time =
    match String.split_on_char ' ' header with
    | [ b; t ] -> (
      match (int_of_string_opt b, int_of_string_opt t) with
      | Some b, Some t -> (b, t)
      | _ -> stop ?line:(here c) "bad entry header %S" header)
    | _ -> stop ?line:(here c) "bad entry header %S" header
  in
  let cst_line = expect_prefix c "cst " in
  let cst =
    (* every token must parse: a malformed token is corruption, not noise to
       be filtered out *)
    let float_or_fail tok =
      match float_of_string_opt tok with
      | Some f -> f
      | None -> stop ?line:(here c) "bad cst token %S in %S" tok cst_line
    in
    match List.map float_or_fail (String.split_on_char ' ' cst_line) with
    | [ ao; io; ao'; io' ] ->
      {
        Cst.before = Cache.State.make ~ao ~io;
        after = Cache.State.make ~ao:ao' ~io:io';
      }
    | _ -> stop ?line:(here c) "bad cst line %S" cst_line
  in
  let count =
    let raw = expect_prefix c "tokens " in
    match int_of_string_opt raw with
    | Some n -> n
    | None -> stop ?line:(here c) "bad token count %S" raw
  in
  if count < 0 || count > 1_000_000 then
    stop ?line:(here c) "bad token count %d" count;
  let normalized = Array.init count (fun _ -> unescape_line c (next c)) in
  (* make_entry re-interns the tokens: interned ids are process-local and
     are deliberately absent from the on-disk format *)
  Model.make_entry ~block ~instrs:[] ~normalized ~cst ~first_time

let parse_model c =
  (match next c with
  | "cstbbs 1" -> ()
  | l -> stop ?line:(here c) "bad magic %S" l);
  let name = unescape_line c (expect_prefix c "name ") in
  let rec entries acc =
    match peek c with
    | Some "end" ->
      c.pos <- c.pos + 1;
      List.rev acc
    | Some _ -> entries (parse_entry c :: acc)
    | None -> stop ?line:(eof_line c) "missing end"
  in
  Model.make ~name (entries [])

let cursor_of_string s =
  (* keep no trailing empty line noise, but remember original line numbers *)
  let lines =
    String.split_on_char '\n' s
    |> List.mapi (fun i l -> (i + 1, l))
    |> List.filter (fun (_, l) -> l <> "")
    |> Array.of_list
  in
  { lines; pos = 0 }

let parse_repository c =
  (match next c with
  | "scaguard-repository 1" -> ()
  | l -> stop ?line:(here c) "bad repository magic %S" l);
  let rec pocs acc =
    match peek c with
    | None -> List.rev acc
    | Some _ ->
      let family = unescape_line c (expect_prefix c "poc ") in
      let model = parse_model c in
      pocs ({ Detector.family; model } :: acc)
  in
  pocs []

let run_parser ?file parse s =
  match parse (cursor_of_string s) with
  | v -> Ok v
  | exception Parse_stop (line, msg) -> Error (Err.Parse { file; line; msg })

let model_of_string_result ?file s = run_parser ?file parse_model s
let repository_of_string_result ?file s = run_parser ?file parse_repository s

let ok_or_failwith = function
  | Ok v -> v
  | Error e -> failwith (Err.to_string e)

let model_of_string s = ok_or_failwith (model_of_string_result s)
let repository_of_string s = ok_or_failwith (repository_of_string_result s)

(* -- binary format ------------------------------------------------------------ *)

let bin_magic = "SCAGBIN"

(* v1: header, string table, model index, blobs.
   v2: an optional repository-index section (u8 presence byte + the
   length-prefixed Vpindex encoding) between the model index and the blobs.
   Readers accept both; writers emit v2 (a v2 file without the section is
   byte-wise v1 plus one zero byte). *)
let bin_version = 2
let bin_version_min = 1
let kind_repository = Char.code 'R'
let kind_model = Char.code 'M'

let is_binary s =
  String.length s >= String.length bin_magic
  && String.sub s 0 (String.length bin_magic) = bin_magic

(* Writer-side string interner: ids in first-appearance order, so the image
   is a deterministic function of the repository value. *)
type string_table = { tbl : (string, int) Hashtbl.t; mutable rev : string list }

let new_table () = { tbl = Hashtbl.create 64; rev = [] }

let sid_of t s =
  match Hashtbl.find_opt t.tbl s with
  | Some id -> id
  | None ->
    let id = Hashtbl.length t.tbl in
    Hashtbl.add t.tbl s id;
    t.rev <- s :: t.rev;
    id

let table_strings t = Array.of_list (List.rev t.rev)

let add_table buf t =
  let strings = table_strings t in
  Binfmt.add_uint buf (Array.length strings);
  Array.iter (Binfmt.add_string buf) strings

(* One model's payload: the entries (tokens as string-table ids, CST floats
   as exact bits) followed by the per-entry cache-change magnitudes — the
   inline summary that makes Detector.prepare a no-op on load. *)
let model_blob table (m : Model.t) =
  let buf = Buffer.create 1024 in
  let entries = Model.entries_array m in
  Binfmt.add_uint buf (Array.length entries);
  Array.iter
    (fun (e : Model.entry) ->
      Binfmt.add_int buf e.Model.block;
      Binfmt.add_int buf e.Model.first_time;
      let b = e.Model.cst.Cst.before and a = e.Model.cst.Cst.after in
      Binfmt.add_float buf b.Cache.State.ao;
      Binfmt.add_float buf b.Cache.State.io;
      Binfmt.add_float buf a.Cache.State.ao;
      Binfmt.add_float buf a.Cache.State.io;
      Binfmt.add_uint buf (Array.length e.Model.normalized);
      Array.iter
        (fun tok -> Binfmt.add_uint buf (sid_of table tok))
        e.Model.normalized)
    entries;
  Array.iter
    (fun (e : Model.entry) ->
      Binfmt.add_float buf (Cst.change_magnitude e.Model.cst))
    entries;
  Buffer.contents buf

let add_header buf ~kind =
  Buffer.add_string buf bin_magic;
  Binfmt.add_u8 buf bin_version;
  Binfmt.add_u8 buf kind

let repository_to_bytes ?index (repo : Detector.repository) =
  let table = new_table () in
  (* a pre-pass interns names and families before any token, purely so the
     index can be written before the blobs; ids are arbitrary anyway *)
  let named =
    List.map
      (fun (p : Detector.poc) ->
        let name_id = sid_of table p.Detector.model.Model.name in
        let family_id = sid_of table p.Detector.family in
        (name_id, family_id, p))
      repo
  in
  let blobs =
    List.map
      (fun (name_id, family_id, (p : Detector.poc)) ->
        (name_id, family_id, model_blob table p.Detector.model))
      named
  in
  let buf = Buffer.create 4096 in
  add_header buf ~kind:kind_repository;
  add_table buf table;
  Binfmt.add_uint buf (List.length blobs);
  List.iter
    (fun (name_id, family_id, blob) ->
      Binfmt.add_uint buf name_id;
      Binfmt.add_uint buf family_id;
      Binfmt.add_uint buf (String.length blob))
    blobs;
  (match index with
  | None -> Binfmt.add_u8 buf 0
  | Some ix ->
    Binfmt.add_u8 buf 1;
    Binfmt.add_string buf (Vpindex.to_bytes ix));
  List.iter (fun (_, _, blob) -> buf_add buf blob) blobs;
  Buffer.contents buf

let model_to_bytes (m : Model.t) =
  let table = new_table () in
  let name_id = sid_of table m.Model.name in
  let blob = model_blob table m in
  let buf = Buffer.create 1024 in
  add_header buf ~kind:kind_model;
  add_table buf table;
  Binfmt.add_uint buf name_id;
  buf_add buf blob;
  Buffer.contents buf

(* reader side *)

let parse_header r ~kind =
  Binfmt.expect r bin_magic;
  let v = Binfmt.u8 r in
  if v < bin_version_min || v > bin_version then
    Binfmt.fail r
      "unsupported binary format version %d (this build reads versions %d-%d)"
      v bin_version_min bin_version;
  let k = Binfmt.u8 r in
  if k <> kind then
    Binfmt.fail r "expected a %s file (kind '%c'), got kind '%c'"
      (if kind = kind_repository then "repository" else "model")
      (Char.chr kind) (Char.chr k);
  v

let parse_table r =
  let n = Binfmt.count r ~what:"string table" in
  Array.init n (fun _ -> Binfmt.string r)

let parse_sid r strings =
  let i = Binfmt.uint r in
  if i >= Array.length strings then
    Binfmt.fail r "string id %d out of range (table has %d)" i
      (Array.length strings);
  strings.(i)

(* Decode one model blob.  Returns the model paired with its summary,
   rebuilt from the inline magnitudes via Dtw.summarize_with — identical to
   Dtw.summarize because the CST floats round-trip bit-exactly. *)
let parse_model_blob r strings ~name =
  let n_entries = Binfmt.count r ~what:"entry" in
  let entries =
    Array.init n_entries (fun _ ->
        let block = Binfmt.int r in
        let first_time = Binfmt.int r in
        let ao = Binfmt.float r in
        let io = Binfmt.float r in
        let ao' = Binfmt.float r in
        let io' = Binfmt.float r in
        let cst =
          match Cache.State.make ~ao ~io with
          | before -> (
            match Cache.State.make ~ao:ao' ~io:io' with
            | after -> { Cst.before; after }
            | exception Invalid_argument m -> Binfmt.fail r "bad cst: %s" m)
          | exception Invalid_argument m -> Binfmt.fail r "bad cst: %s" m
        in
        let n_tokens = Binfmt.count r ~what:"token" in
        let normalized = Array.init n_tokens (fun _ -> parse_sid r strings) in
        Model.make_entry ~block ~instrs:[] ~normalized ~cst ~first_time)
  in
  let mags = Array.init n_entries (fun _ -> Binfmt.float r) in
  let model = Model.make ~name (Array.to_list entries) in
  (model, Dtw.summarize_with ~mags model)

type index_entry = { ix_name : string; ix_family : string; ix_len : int }

let parse_index r strings =
  let n = Binfmt.count r ~what:"model index" in
  Array.init n (fun _ ->
      let ix_name = parse_sid r strings in
      let ix_family = parse_sid r strings in
      let ix_len = Binfmt.uint r in
      { ix_name; ix_family; ix_len })

(* Runs after every section preceding the blobs has been consumed; the
   remaining bytes must be exactly what the model index declared. *)
let check_blob_bytes r index =
  let total = Array.fold_left (fun acc e -> acc + e.ix_len) 0 index in
  if total <> Binfmt.remaining r then
    Binfmt.fail r
      "corrupt model index: blobs cover %d bytes but %d remain" total
      (Binfmt.remaining r)

(* The v2 repository-index section.  v1 images simply lack it — the absence
   of an index is never an error, only its corruption is. *)
let parse_vpindex_section r ~version ~size =
  if version < 2 then None
  else
    match Binfmt.u8 r with
    | 0 -> None
    | 1 -> (
      let bytes = Binfmt.string r in
      match Vpindex.of_bytes_result bytes with
      | Error e -> Binfmt.fail r "corrupt repository index: %s" (Err.to_string e)
      | Ok ix ->
        if Vpindex.size ix <> size then
          Binfmt.fail r
            "repository index covers %d models but the image has %d"
            (Vpindex.size ix) size;
        Some ix)
    | b -> Binfmt.fail r "bad repository-index presence byte %d" b

(* Parse the whole image eagerly; every blob must consume exactly the length
   the index declared for it. *)
let parse_repository_bin r =
  let version = parse_header r ~kind:kind_repository in
  let strings = parse_table r in
  let index = parse_index r strings in
  let vpindex =
    parse_vpindex_section r ~version ~size:(Array.length index)
  in
  check_blob_bytes r index;
  let pairs =
    Array.to_list
      (Array.map
         (fun e ->
           let start = Binfmt.pos r in
           let model, summary = parse_model_blob r strings ~name:e.ix_name in
           if Binfmt.pos r - start <> e.ix_len then
             Binfmt.fail r
               "model %S blob length mismatch (index said %d, read %d)"
               e.ix_name e.ix_len
               (Binfmt.pos r - start);
           ({ Detector.family = e.ix_family; model }, summary))
         index)
  in
  (pairs, vpindex)

let parse_model_bin r =
  let _version = parse_header r ~kind:kind_model in
  let strings = parse_table r in
  let name = parse_sid r strings in
  let model, _summary = parse_model_blob r strings ~name in
  if Binfmt.remaining r <> 0 then
    Binfmt.fail r "trailing garbage after model (%d bytes)" (Binfmt.remaining r);
  model

let repository_of_bytes_indexed_result ?file s =
  Binfmt.run ?file parse_repository_bin s

let repository_of_bytes_prepared_result ?file s =
  Result.map fst (repository_of_bytes_indexed_result ?file s)

let repository_of_bytes_result ?file s =
  Result.map (List.map fst) (repository_of_bytes_prepared_result ?file s)

let model_of_bytes_result ?file s = Binfmt.run ?file parse_model_bin s

(* -- the lazy image ------------------------------------------------------------ *)

type image = {
  img_path : string;
  img_data : string;
  img_strings : string array;
  img_index : (index_entry * int) array;  (* entry, absolute blob offset *)
  img_vpindex : Vpindex.t option;
}

let parse_image ~path data r =
  let version = parse_header r ~kind:kind_repository in
  let strings = parse_table r in
  let index = parse_index r strings in
  let vpindex =
    parse_vpindex_section r ~version ~size:(Array.length index)
  in
  check_blob_bytes r index;
  let off = ref (Binfmt.pos r) in
  let img_index =
    Array.map
      (fun e ->
        let o = !off in
        off := o + e.ix_len;
        (e, o))
      index
  in
  {
    img_path = path;
    img_data = data;
    img_strings = strings;
    img_index;
    img_vpindex = vpindex;
  }

let image_path img = img.img_path
let image_size img = Array.length img.img_index
let image_vpindex img = img.img_vpindex

let image_pocs img =
  Array.map (fun (e, _) -> (e.ix_name, e.ix_family)) img.img_index

let image_load_prepared_result img ~name =
  match
    Array.find_opt (fun (e, _) -> e.ix_name = name) img.img_index
  with
  | None ->
    Error
      (Err.Parse
         {
           file = Some img.img_path;
           line = None;
           msg = Printf.sprintf "no model named %S in the image index" name;
         })
  | Some (e, off) ->
    Binfmt.run ~file:img.img_path
      (fun r ->
        let model, summary =
          parse_model_blob r img.img_strings ~name:e.ix_name
        in
        if Binfmt.remaining r <> 0 then
          Binfmt.fail r "model %S blob length mismatch" e.ix_name;
        ({ Detector.family = e.ix_family; model }, summary))
      (String.sub img.img_data off e.ix_len)

let image_load_result img ~name =
  Result.map fst (image_load_prepared_result img ~name)

(* -- atomic IO ----------------------------------------------------------------- *)

let sys_error_of_unix ~path e op =
  Sys_error (Printf.sprintf "%s: %s (%s)" path (Unix.error_message e) op)

(* Directory fds are not openable/fsyncable on every platform; durability of
   the rename is best-effort there, the file data itself is always synced. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

(* Atomic and durable: write a sibling temp file, fsync it, rename it over
   the destination, then fsync the directory.  A crash mid-write can never
   corrupt an existing file at [path], and a crash right after the rename
   can no longer publish a truncated file (the data hits disk before the
   rename does).  Every Unix-level failure surfaces as the documented
   Sys_error — nothing leaks Unix_error — and the temp file is removed on
   any failure. *)
let write_atomic ~path contents =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir "scaguard" ".tmp" in
  let cleanup () = try Sys.remove tmp with Sys_error _ -> () in
  try
    let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let len = String.length contents in
        let bytes = Bytes.unsafe_of_string contents in
        let off = ref 0 in
        while !off < len do
          off := !off + Unix.write fd bytes !off (len - !off)
        done;
        Unix.fsync fd);
    (* temp_file creates 0600; restore the conventional data-file mode so the
       saved file stays readable by other processes *)
    Unix.chmod tmp 0o644;
    Unix.rename tmp path;
    fsync_dir dir
  with
  | Unix.Unix_error (e, op, _) ->
    cleanup ();
    raise (sys_error_of_unix ~path e op)
  | e ->
    cleanup ();
    raise e

let read_file ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      really_input_string ic n)

let io_result ~path f =
  match f () with
  | v -> Ok v
  | exception Sys_error msg -> Error (Err.Io { path; msg })
  | exception Unix.Unix_error (e, _, _) ->
    Error (Err.Io { path; msg = Unix.error_message e })

let ( let* ) = Result.bind

(* Loads sniff: the binary magic can never collide with the text headers. *)
let load_repository_result ~path =
  let* s = io_result ~path (fun () -> read_file ~path) in
  if is_binary s then repository_of_bytes_result ~file:path s
  else run_parser ~file:path parse_repository s

let load_repository_prepared_result ~path =
  let* s = io_result ~path (fun () -> read_file ~path) in
  if is_binary s then
    let* pairs, vpindex = repository_of_bytes_indexed_result ~file:path s in
    let prep = Detector.prepare_summarized (Array.of_list pairs) in
    Ok (List.map fst pairs, Detector.attach_index prep vpindex)
  else
    let* repo = run_parser ~file:path parse_repository s in
    Ok (repo, Detector.prepare repo)

let load_model_result ~path =
  let* s = io_result ~path (fun () -> read_file ~path) in
  if is_binary s then model_of_bytes_result ~file:path s
  else run_parser ~file:path parse_model s

let open_image_result ~path =
  let* s = io_result ~path (fun () -> read_file ~path) in
  Binfmt.run ~file:path (parse_image ~path s) s

let save_repository_result ~path repo =
  io_result ~path (fun () -> write_atomic ~path (repository_to_string repo))

let save_repository_bin_result ?index ~path repo =
  io_result ~path (fun () ->
      write_atomic ~path (repository_to_bytes ?index repo))

let save_model_result ~path m =
  io_result ~path (fun () -> write_atomic ~path (model_to_string m))

let save_model_bin_result ~path m =
  io_result ~path (fun () -> write_atomic ~path (model_to_bytes m))

let raise_load_error = function
  | Err.Io { msg; _ } -> raise (Sys_error msg)
  | e -> failwith (Err.to_string e)

let save_repository ~path repo = write_atomic ~path (repository_to_string repo)

let load_repository ~path =
  match load_repository_result ~path with
  | Ok repo -> repo
  | Error e -> raise_load_error e

let save_model ~path m = write_atomic ~path (model_to_string m)

let load_model ~path =
  match load_model_result ~path with
  | Ok m -> m
  | Error e -> raise_load_error e
