(* Line-oriented format:

     cstbbs 1
     name <model name>
     entry <block> <first_time>
     cst <ao> <io> <ao'> <io'>
     tokens <count>
     <one normalized token per line>
     ...repeat entry...
     end

   Repositories wrap models with `poc <family>` headers. *)

let buf_add = Buffer.add_string

let entry_to_buffer buf (e : Model.entry) =
  buf_add buf (Printf.sprintf "entry %d %d\n" e.Model.block e.Model.first_time);
  let b = e.Model.cst.Cst.before and a = e.Model.cst.Cst.after in
  buf_add buf
    (Printf.sprintf "cst %.17g %.17g %.17g %.17g\n" b.Cache.State.ao
       b.Cache.State.io a.Cache.State.ao a.Cache.State.io);
  buf_add buf (Printf.sprintf "tokens %d\n" (Array.length e.Model.normalized));
  Array.iter
    (fun tok ->
      if String.contains tok '\n' then failwith "Persist: token contains newline";
      buf_add buf tok;
      Buffer.add_char buf '\n')
    e.Model.normalized

let model_to_buffer buf (m : Model.t) =
  buf_add buf "cstbbs 1\n";
  (if String.contains m.Model.name '\n' then
     failwith "Persist: model name contains newline");
  buf_add buf (Printf.sprintf "name %s\n" m.Model.name);
  List.iter (entry_to_buffer buf) m.Model.entries;
  buf_add buf "end\n"

let model_to_string m =
  let buf = Buffer.create 1024 in
  model_to_buffer buf m;
  Buffer.contents buf

(* -- parsing ----------------------------------------------------------------- *)

type cursor = { lines : string array; mutable pos : int }

let peek c = if c.pos < Array.length c.lines then Some c.lines.(c.pos) else None

let next c =
  match peek c with
  | Some l ->
    c.pos <- c.pos + 1;
    l
  | None -> failwith "Persist: unexpected end of input"

let expect_prefix c prefix =
  let l = next c in
  let n = String.length prefix in
  if String.length l < n || String.sub l 0 n <> prefix then
    failwith (Printf.sprintf "Persist: expected %S, got %S" prefix l);
  String.sub l n (String.length l - n)

let parse_entry c =
  let header = expect_prefix c "entry " in
  let block, first_time =
    match String.split_on_char ' ' header with
    | [ b; t ] -> (int_of_string b, int_of_string t)
    | _ -> failwith "Persist: bad entry header"
  in
  let cst_line = expect_prefix c "cst " in
  let cst =
    (* every token must parse: a malformed token is corruption, not noise to
       be filtered out *)
    let float_or_fail tok =
      match float_of_string_opt tok with
      | Some f -> f
      | None ->
        failwith (Printf.sprintf "Persist: bad cst token %S in %S" tok cst_line)
    in
    match List.map float_or_fail (String.split_on_char ' ' cst_line) with
    | [ ao; io; ao'; io' ] ->
      {
        Cst.before = Cache.State.make ~ao ~io;
        after = Cache.State.make ~ao:ao' ~io:io';
      }
    | _ -> failwith "Persist: bad cst line"
  in
  let count = int_of_string (expect_prefix c "tokens ") in
  if count < 0 || count > 1_000_000 then failwith "Persist: bad token count";
  let normalized = Array.init count (fun _ -> next c) in
  (* make_entry re-interns the tokens: interned ids are process-local and
     are deliberately absent from the on-disk format *)
  Model.make_entry ~block ~instrs:[] ~normalized ~cst ~first_time

let parse_model c =
  (match next c with
  | "cstbbs 1" -> ()
  | l -> failwith (Printf.sprintf "Persist: bad magic %S" l));
  let name = expect_prefix c "name " in
  let rec entries acc =
    match peek c with
    | Some "end" ->
      c.pos <- c.pos + 1;
      List.rev acc
    | Some _ -> entries (parse_entry c :: acc)
    | None -> failwith "Persist: missing end"
  in
  Model.make ~name (entries [])

let cursor_of_string s =
  (* keep no trailing empty line noise *)
  let lines =
    String.split_on_char '\n' s
    |> List.filter (fun l -> l <> "")
    |> Array.of_list
  in
  { lines; pos = 0 }

let model_of_string s = parse_model (cursor_of_string s)

let repository_to_string (repo : Detector.repository) =
  let buf = Buffer.create 4096 in
  buf_add buf "scaguard-repository 1\n";
  List.iter
    (fun (p : Detector.poc) ->
      (if String.contains p.Detector.family '\n' then
         failwith "Persist: family contains newline");
      buf_add buf (Printf.sprintf "poc %s\n" p.Detector.family);
      model_to_buffer buf p.Detector.model)
    repo;
  Buffer.contents buf

let repository_of_string s =
  let c = cursor_of_string s in
  (match next c with
  | "scaguard-repository 1" -> ()
  | l -> failwith (Printf.sprintf "Persist: bad repository magic %S" l));
  let rec pocs acc =
    match peek c with
    | None -> List.rev acc
    | Some _ ->
      let family = expect_prefix c "poc " in
      let model = parse_model c in
      pocs ({ Detector.family; model } :: acc)
  in
  pocs []

(* Atomic: write a sibling temp file, then rename over the destination, so a
   crash mid-write can never corrupt an existing file at [path]. *)
let write_atomic ~path contents =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir "scaguard" ".tmp" in
  (try
     let oc = open_out tmp in
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () -> output_string oc contents);
     (* temp_file creates 0600; restore the conventional data-file mode so the
        saved file stays readable by other processes *)
     Unix.chmod tmp 0o644
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  try Sys.rename tmp path
  with e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let read_file ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      really_input_string ic n)

let save_repository ~path repo = write_atomic ~path (repository_to_string repo)
let load_repository ~path = repository_of_string (read_file ~path)
let save_model ~path m = write_atomic ~path (model_to_string m)
let load_model ~path = model_of_string (read_file ~path)
