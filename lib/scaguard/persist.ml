(* Line-oriented format:

     cstbbs 1
     name <model name>
     entry <block> <first_time>
     cst <ao> <io> <ao'> <io'>
     tokens <count>
     <one normalized token per line>
     ...repeat entry...
     end

   Repositories wrap models with `poc <family>` headers. *)

let buf_add = Buffer.add_string

let entry_to_buffer buf (e : Model.entry) =
  buf_add buf (Printf.sprintf "entry %d %d\n" e.Model.block e.Model.first_time);
  let b = e.Model.cst.Cst.before and a = e.Model.cst.Cst.after in
  buf_add buf
    (Printf.sprintf "cst %.17g %.17g %.17g %.17g\n" b.Cache.State.ao
       b.Cache.State.io a.Cache.State.ao a.Cache.State.io);
  buf_add buf (Printf.sprintf "tokens %d\n" (Array.length e.Model.normalized));
  Array.iter
    (fun tok ->
      if String.contains tok '\n' then failwith "Persist: token contains newline";
      buf_add buf tok;
      Buffer.add_char buf '\n')
    e.Model.normalized

let model_to_buffer buf (m : Model.t) =
  buf_add buf "cstbbs 1\n";
  (if String.contains m.Model.name '\n' then
     failwith "Persist: model name contains newline");
  buf_add buf (Printf.sprintf "name %s\n" m.Model.name);
  List.iter (entry_to_buffer buf) m.Model.entries;
  buf_add buf "end\n"

let model_to_string m =
  let buf = Buffer.create 1024 in
  model_to_buffer buf m;
  Buffer.contents buf

let repository_to_string (repo : Detector.repository) =
  let buf = Buffer.create 4096 in
  buf_add buf "scaguard-repository 1\n";
  List.iter
    (fun (p : Detector.poc) ->
      (if String.contains p.Detector.family '\n' then
         failwith "Persist: family contains newline");
      buf_add buf (Printf.sprintf "poc %s\n" p.Detector.family);
      model_to_buffer buf p.Detector.model)
    repo;
  Buffer.contents buf

(* -- parsing ----------------------------------------------------------------- *)

(* Parse failures carry the 1-based line number of the offending line in the
   original text (blank lines count, even though the cursor skips them), so
   [Err.Parse] can point at the exact spot in a saved file. *)
exception Parse_stop of int option * string

let stop ?line fmt = Printf.ksprintf (fun msg -> raise (Parse_stop (line, msg))) fmt

(* [lines] keeps only non-empty lines (blank-line noise is tolerated) but each
   is paired with its original 1-based line number for error reporting. *)
type cursor = { lines : (int * string) array; mutable pos : int }

let peek c =
  if c.pos < Array.length c.lines then Some (snd c.lines.(c.pos)) else None

(* Line number to report for "ran off the end": one past the last kept line. *)
let eof_line c =
  let n = Array.length c.lines in
  if n = 0 then Some 1 else Some (fst c.lines.(n - 1) + 1)

(* Line number of the line the cursor last consumed. *)
let here c =
  if c.pos = 0 then Some 1 else Some (fst c.lines.(c.pos - 1))

let next c =
  match peek c with
  | Some l ->
    c.pos <- c.pos + 1;
    l
  | None -> stop ?line:(eof_line c) "unexpected end of input"

let expect_prefix c prefix =
  let l = next c in
  let n = String.length prefix in
  if String.length l < n || String.sub l 0 n <> prefix then
    stop ?line:(here c) "expected %S, got %S" prefix l;
  String.sub l n (String.length l - n)

let parse_entry c =
  let header = expect_prefix c "entry " in
  let block, first_time =
    match String.split_on_char ' ' header with
    | [ b; t ] -> (
      match (int_of_string_opt b, int_of_string_opt t) with
      | Some b, Some t -> (b, t)
      | _ -> stop ?line:(here c) "bad entry header %S" header)
    | _ -> stop ?line:(here c) "bad entry header %S" header
  in
  let cst_line = expect_prefix c "cst " in
  let cst =
    (* every token must parse: a malformed token is corruption, not noise to
       be filtered out *)
    let float_or_fail tok =
      match float_of_string_opt tok with
      | Some f -> f
      | None -> stop ?line:(here c) "bad cst token %S in %S" tok cst_line
    in
    match List.map float_or_fail (String.split_on_char ' ' cst_line) with
    | [ ao; io; ao'; io' ] ->
      {
        Cst.before = Cache.State.make ~ao ~io;
        after = Cache.State.make ~ao:ao' ~io:io';
      }
    | _ -> stop ?line:(here c) "bad cst line %S" cst_line
  in
  let count =
    let raw = expect_prefix c "tokens " in
    match int_of_string_opt raw with
    | Some n -> n
    | None -> stop ?line:(here c) "bad token count %S" raw
  in
  if count < 0 || count > 1_000_000 then
    stop ?line:(here c) "bad token count %d" count;
  let normalized = Array.init count (fun _ -> next c) in
  (* make_entry re-interns the tokens: interned ids are process-local and
     are deliberately absent from the on-disk format *)
  Model.make_entry ~block ~instrs:[] ~normalized ~cst ~first_time

let parse_model c =
  (match next c with
  | "cstbbs 1" -> ()
  | l -> stop ?line:(here c) "bad magic %S" l);
  let name = expect_prefix c "name " in
  let rec entries acc =
    match peek c with
    | Some "end" ->
      c.pos <- c.pos + 1;
      List.rev acc
    | Some _ -> entries (parse_entry c :: acc)
    | None -> stop ?line:(eof_line c) "missing end"
  in
  Model.make ~name (entries [])

let cursor_of_string s =
  (* keep no trailing empty line noise, but remember original line numbers *)
  let lines =
    String.split_on_char '\n' s
    |> List.mapi (fun i l -> (i + 1, l))
    |> List.filter (fun (_, l) -> l <> "")
    |> Array.of_list
  in
  { lines; pos = 0 }

let parse_repository c =
  (match next c with
  | "scaguard-repository 1" -> ()
  | l -> stop ?line:(here c) "bad repository magic %S" l);
  let rec pocs acc =
    match peek c with
    | None -> List.rev acc
    | Some _ ->
      let family = expect_prefix c "poc " in
      let model = parse_model c in
      pocs ({ Detector.family; model } :: acc)
  in
  pocs []

let run_parser ?file parse s =
  match parse (cursor_of_string s) with
  | v -> Ok v
  | exception Parse_stop (line, msg) -> Error (Err.Parse { file; line; msg })

let model_of_string_result ?file s = run_parser ?file parse_model s
let repository_of_string_result ?file s = run_parser ?file parse_repository s

let ok_or_failwith = function
  | Ok v -> v
  | Error e -> failwith (Err.to_string e)

let model_of_string s = ok_or_failwith (model_of_string_result s)
let repository_of_string s = ok_or_failwith (repository_of_string_result s)

(* Atomic: write a sibling temp file, then rename over the destination, so a
   crash mid-write can never corrupt an existing file at [path]. *)
let write_atomic ~path contents =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir "scaguard" ".tmp" in
  (try
     let oc = open_out tmp in
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () -> output_string oc contents);
     (* temp_file creates 0600; restore the conventional data-file mode so the
        saved file stays readable by other processes *)
     Unix.chmod tmp 0o644
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  try Sys.rename tmp path
  with e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let read_file ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      really_input_string ic n)

let io_result ~path f =
  match f () with
  | v -> Ok v
  | exception Sys_error msg -> Error (Err.Io { path; msg })
  | exception Unix.Unix_error (e, _, _) ->
    Error (Err.Io { path; msg = Unix.error_message e })

let load_result ~path parse =
  match io_result ~path (fun () -> read_file ~path) with
  | Error _ as e -> e
  | Ok s -> run_parser ~file:path parse s

let load_repository_result ~path = load_result ~path parse_repository
let load_model_result ~path = load_result ~path parse_model

let save_repository_result ~path repo =
  io_result ~path (fun () -> write_atomic ~path (repository_to_string repo))

let save_model_result ~path m =
  io_result ~path (fun () -> write_atomic ~path (model_to_string m))

let raise_load_error = function
  | Err.Io { msg; _ } -> raise (Sys_error msg)
  | e -> failwith (Err.to_string e)

let save_repository ~path repo = write_atomic ~path (repository_to_string repo)

let load_repository ~path =
  match load_repository_result ~path with
  | Ok repo -> repo
  | Error e -> raise_load_error e

let save_model ~path m = write_atomic ~path (model_to_string m)

let load_model ~path =
  match load_model_result ~path with
  | Ok m -> m
  | Error e -> raise_load_error e
