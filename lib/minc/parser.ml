exception Error of string

type state = { mutable toks : Lexer.token list }

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let peek st = match st.toks with [] -> Lexer.EOF | t :: _ -> t

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect_punct st p =
  match peek st with
  | Lexer.PUNCT q when q = p -> advance st
  | t -> fail "expected %S, found %s" p (Lexer.token_to_string t)

let expect_kw st k =
  match peek st with
  | Lexer.KW q when q = k -> advance st
  | t -> fail "expected %S, found %s" k (Lexer.token_to_string t)

let expect_ident st =
  match peek st with
  | Lexer.IDENT s ->
    advance st;
    s
  | t -> fail "expected identifier, found %s" (Lexer.token_to_string t)

let expect_int st =
  match peek st with
  | Lexer.INT v ->
    advance st;
    v
  | t -> fail "expected integer, found %s" (Lexer.token_to_string t)

(* precedence table, loosest first *)
let precedence = function
  | "==" | "!=" | "<" | "<=" | ">" | ">=" -> 1
  | "|" -> 2
  | "^" -> 3
  | "&" -> 4
  | "<<" | ">>" -> 5
  | "+" | "-" -> 6
  | "*" -> 7
  | _ -> 0

let binop_of = function
  | "+" -> Ast.Add | "-" -> Ast.Sub | "*" -> Ast.Mul
  | "&" -> Ast.BAnd | "|" -> Ast.BOr | "^" -> Ast.BXor
  | "<<" -> Ast.Shl | ">>" -> Ast.Shr
  | "==" -> Ast.Eq | "!=" -> Ast.Ne
  | "<" -> Ast.Lt | "<=" -> Ast.Le | ">" -> Ast.Gt | ">=" -> Ast.Ge
  | op -> fail "not a binary operator: %s" op

let rec parse_expr st = parse_binary st 1

and parse_binary st min_prec =
  let lhs = ref (parse_primary st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.PUNCT op when precedence op >= min_prec && precedence op > 0 ->
      advance st;
      let rhs = parse_binary st (precedence op + 1) in
      lhs := Ast.Bin (binop_of op, !lhs, rhs)
    | _ -> continue := false
  done;
  !lhs

and parse_primary st =
  match peek st with
  | Lexer.INT v ->
    advance st;
    Ast.Int v
  | Lexer.PUNCT "-" ->
    advance st;
    Ast.Neg (parse_primary st)
  | Lexer.PUNCT "(" ->
    advance st;
    let e = parse_expr st in
    expect_punct st ")";
    e
  | Lexer.KW "rdtsc" ->
    advance st;
    expect_punct st "(";
    expect_punct st ")";
    Ast.Rdtsc
  | Lexer.IDENT name -> (
    advance st;
    match peek st with
    | Lexer.PUNCT "(" ->
      advance st;
      let args = parse_args st in
      expect_punct st ")";
      Ast.Call (name, args)
    | Lexer.PUNCT "[" ->
      advance st;
      let idx = parse_expr st in
      expect_punct st "]";
      Ast.Global (name, idx)
    | _ -> Ast.Var name)
  | t -> fail "expected expression, found %s" (Lexer.token_to_string t)

and parse_args st =
  if peek st = Lexer.PUNCT ")" then []
  else begin
    let rec more acc =
      let e = parse_expr st in
      if peek st = Lexer.PUNCT "," then begin
        advance st;
        more (e :: acc)
      end
      else List.rev (e :: acc)
    in
    more []
  end

let rec parse_block st =
  expect_punct st "{";
  let rec stmts acc =
    if peek st = Lexer.PUNCT "}" then begin
      advance st;
      List.rev acc
    end
    else stmts (parse_stmt st :: acc)
  in
  stmts []

and parse_stmt st =
  match peek st with
  | Lexer.KW "var" ->
    advance st;
    let name = expect_ident st in
    expect_punct st "=";
    let e = parse_expr st in
    expect_punct st ";";
    Ast.Decl (name, e)
  | Lexer.KW "if" ->
    advance st;
    expect_punct st "(";
    let cond = parse_expr st in
    expect_punct st ")";
    let then_ = parse_block st in
    let else_ =
      if peek st = Lexer.KW "else" then begin
        advance st;
        parse_block st
      end
      else []
    in
    Ast.If (cond, then_, else_)
  | Lexer.KW "while" ->
    advance st;
    expect_punct st "(";
    let cond = parse_expr st in
    expect_punct st ")";
    Ast.While (cond, parse_block st)
  | Lexer.KW "return" ->
    advance st;
    let e = parse_expr st in
    expect_punct st ";";
    Ast.Return e
  | Lexer.KW "clflush" ->
    advance st;
    expect_punct st "(";
    let name = expect_ident st in
    expect_punct st "[";
    let idx = parse_expr st in
    expect_punct st "]";
    expect_punct st ")";
    expect_punct st ";";
    Ast.Clflush (name, idx)
  | Lexer.KW "lfence" ->
    advance st;
    expect_punct st "(";
    expect_punct st ")";
    expect_punct st ";";
    Ast.Lfence
  | Lexer.IDENT name -> (
    advance st;
    match peek st with
    | Lexer.PUNCT "=" ->
      advance st;
      let e = parse_expr st in
      expect_punct st ";";
      Ast.Assign (name, e)
    | Lexer.PUNCT "[" ->
      advance st;
      let idx = parse_expr st in
      expect_punct st "]";
      (* either a store or an expression statement beginning with a load *)
      if peek st = Lexer.PUNCT "=" then begin
        advance st;
        let e = parse_expr st in
        expect_punct st ";";
        Ast.Store (name, idx, e)
      end
      else begin
        (* re-parse as expression continuing from the load *)
        let lhs = Ast.Global (name, idx) in
        let e = parse_binary_from st lhs in
        expect_punct st ";";
        Ast.ExprStmt e
      end
    | Lexer.PUNCT "(" ->
      advance st;
      let args = parse_args st in
      expect_punct st ")";
      let lhs = Ast.Call (name, args) in
      let e = parse_binary_from st lhs in
      expect_punct st ";";
      Ast.ExprStmt e
    | t -> fail "expected statement after %S, found %s" name
             (Lexer.token_to_string t))
  | t -> fail "expected statement, found %s" (Lexer.token_to_string t)

and parse_binary_from st lhs =
  (* continue a binary expression whose first primary was already consumed *)
  let acc = ref lhs in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.PUNCT op when precedence op > 0 ->
      advance st;
      let rhs = parse_binary st (precedence op + 1) in
      acc := Ast.Bin (binop_of op, !acc, rhs)
    | _ -> continue := false
  done;
  !acc

let parse_fn st =
  expect_kw st "fn";
  let name = expect_ident st in
  expect_punct st "(";
  let params =
    if peek st = Lexer.PUNCT ")" then []
    else begin
      let rec more acc =
        let p = expect_ident st in
        if peek st = Lexer.PUNCT "," then begin
          advance st;
          more (p :: acc)
        end
        else List.rev (p :: acc)
      in
      more []
    end
  in
  expect_punct st ")";
  let body = parse_block st in
  { Ast.name; params; body }

let parse src =
  let st = { toks = Lexer.tokenize src } in
  let globals = ref [] in
  let funcs = ref [] in
  let rec go () =
    match peek st with
    | Lexer.EOF -> ()
    | Lexer.KW "global" ->
      advance st;
      let name = expect_ident st in
      expect_punct st "[";
      let count = expect_int st in
      let stride =
        if peek st = Lexer.PUNCT ":" then begin
          advance st;
          expect_int st
        end
        else 8
      in
      expect_punct st "]";
      let base =
        if peek st = Lexer.PUNCT "@" then begin
          advance st;
          Some (expect_int st)
        end
        else None
      in
      expect_punct st ";";
      globals := { Ast.gname = name; count; stride; base } :: !globals;
      go ()
    | Lexer.KW "fn" ->
      funcs := parse_fn st :: !funcs;
      go ()
    | t -> fail "expected 'global' or 'fn', found %s" (Lexer.token_to_string t)
  in
  go ();
  { Ast.globals = List.rev !globals; funcs = List.rev !funcs }
