(** Pretty-printing MinC ASTs back to parseable source — used by tooling and
    by the parser round-trip property tests. *)

val expr : Ast.expr -> string
(** Fully parenthesized (re-parses to the same tree). *)

val stmt : ?indent:int -> Ast.stmt -> string
val func : Ast.func -> string
val program : Ast.program -> string
(** [parse (program p)] yields a structurally equal AST. *)
