(** A small corpus of MinC source programs: a Flush+Reload attack written in
    the language (compiled attacks exercise the pipeline on compiler-shaped
    code rather than hand-written assembly), and benign sources used by the
    compiler tests and the compile-and-detect example. *)

val flush_reload_source : string
(** A complete Flush+Reload attack over the monitored shared-library lines,
    with the hit counters written to the standard results area — runnable
    against {!Workloads.Victim.shared_lib}. *)

val benign_sources : (string * string) list
(** (name, source) pairs: sort, checksum, table-walk kernels. *)
