type binop =
  | Add | Sub | Mul
  | BAnd | BOr | BXor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | Int of int
  | Var of string
  | Global of string * expr
  | Bin of binop * expr * expr
  | Neg of expr
  | Call of string * expr list
  | Rdtsc

type stmt =
  | Decl of string * expr
  | Assign of string * expr
  | Store of string * expr * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Return of expr
  | ExprStmt of expr
  | Clflush of string * expr
  | Lfence

type func = { name : string; params : string list; body : stmt list }

type global_decl = {
  gname : string;
  count : int;
  stride : int;
  base : int option;
}

type program = { globals : global_decl list; funcs : func list }

let binop_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*"
  | BAnd -> "&" | BOr -> "|" | BXor -> "^" | Shl -> "<<" | Shr -> ">>"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
