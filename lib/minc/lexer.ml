type token =
  | INT of int
  | IDENT of string
  | KW of string
  | PUNCT of string
  | EOF

exception Error of string * int

let keywords =
  [ "fn"; "var"; "if"; "else"; "while"; "return"; "global"; "clflush";
    "rdtsc"; "lfence" ]

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '/' && peek 1 = Some '/' then begin
      (* line comment *)
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if is_digit c then begin
      let start = !i in
      (* hex literals *)
      if c = '0' && peek 1 = Some 'x' then begin
        i := !i + 2;
        while !i < n && (is_digit src.[!i]
                        || (src.[!i] >= 'a' && src.[!i] <= 'f')
                        || (src.[!i] >= 'A' && src.[!i] <= 'F')) do incr i done
      end
      else while !i < n && is_digit src.[!i] do incr i done;
      let lit = String.sub src start (!i - start) in
      match int_of_string_opt lit with
      | Some v -> emit (INT v)
      | None -> raise (Error (Printf.sprintf "bad literal %S" lit, start))
    end
    else if is_alpha c then begin
      let start = !i in
      while !i < n && is_alnum src.[!i] do incr i done;
      let word = String.sub src start (!i - start) in
      if List.mem word keywords then emit (KW word) else emit (IDENT word)
    end
    else begin
      (* two-char operators first *)
      let two =
        match peek 1 with
        | Some c2 -> Some (Printf.sprintf "%c%c" c c2)
        | None -> None
      in
      match two with
      | Some (("=="|"!="|"<="|">="|"<<"|">>") as op) ->
        emit (PUNCT op);
        i := !i + 2
      | _ -> (
        match c with
        | '(' | ')' | '{' | '}' | '[' | ']' | ',' | ';' | '=' | '+' | '-'
        | '*' | '&' | '|' | '^' | '<' | '>' | ':' | '@' ->
          emit (PUNCT (String.make 1 c));
          incr i
        | _ -> raise (Error (Printf.sprintf "unexpected character %C" c, !i)))
    end
  done;
  List.rev (EOF :: !toks)

let token_to_string = function
  | INT v -> string_of_int v
  | IDENT s -> s
  | KW s -> s
  | PUNCT s -> Printf.sprintf "%S" s
  | EOF -> "<eof>"
