(** Hand-written lexer for MinC source text. *)

type token =
  | INT of int
  | IDENT of string
  | KW of string       (** fn var if else while return global clflush rdtsc lfence *)
  | PUNCT of string    (** ( ) { } [ ] , ; = and the operators *)
  | EOF

exception Error of string * int
(** message and byte offset. *)

val tokenize : string -> token list
(** @raise Error on an unexpected character or malformed literal. *)

val token_to_string : token -> string
