module B = Isa.Builder
module I = Isa.Instr
module O = Isa.Operand
module R = Isa.Reg

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ---- constant folding (the "optimizing compiler" half) -------------------- *)

let eval_binop op a b =
  match op with
  | Ast.Add -> a + b
  | Ast.Sub -> a - b
  | Ast.Mul -> a * b
  | Ast.BAnd -> a land b
  | Ast.BOr -> a lor b
  | Ast.BXor -> a lxor b
  | Ast.Shl -> a lsl (if b < 0 || b > 62 then 0 else b)
  | Ast.Shr -> a lsr (if b < 0 || b > 62 then 0 else b)
  | Ast.Eq -> if a = b then 1 else 0
  | Ast.Ne -> if a <> b then 1 else 0
  | Ast.Lt -> if a < b then 1 else 0
  | Ast.Le -> if a <= b then 1 else 0
  | Ast.Gt -> if a > b then 1 else 0
  | Ast.Ge -> if a >= b then 1 else 0

let rec fold_expr e =
  match e with
  | Ast.Int _ | Ast.Var _ | Ast.Rdtsc -> e
  | Ast.Global (g, i) -> Ast.Global (g, fold_expr i)
  | Ast.Neg a -> (
    match fold_expr a with
    | Ast.Int v -> Ast.Int (-v)
    | a' -> Ast.Neg a')
  | Ast.Call (f, args) -> Ast.Call (f, List.map fold_expr args)
  | Ast.Bin (op, a, b) -> (
    match (fold_expr a, fold_expr b) with
    | Ast.Int x, Ast.Int y -> Ast.Int (eval_binop op x y)
    | a', b' -> Ast.Bin (op, a', b'))

let rec fold_stmt s =
  match s with
  | Ast.Decl (n, e) -> Ast.Decl (n, fold_expr e)
  | Ast.Assign (n, e) -> Ast.Assign (n, fold_expr e)
  | Ast.Store (g, i, e) -> Ast.Store (g, fold_expr i, fold_expr e)
  | Ast.If (c, t, f) -> (
    match fold_expr c with
    | Ast.Int 0 -> Ast.If (Ast.Int 0, [], List.map fold_stmt f)
    | Ast.Int _ -> Ast.If (Ast.Int 1, List.map fold_stmt t, [])
    | c' -> Ast.If (c', List.map fold_stmt t, List.map fold_stmt f))
  | Ast.While (c, b) -> Ast.While (fold_expr c, List.map fold_stmt b)
  | Ast.Return e -> Ast.Return (fold_expr e)
  | Ast.ExprStmt e -> Ast.ExprStmt (fold_expr e)
  | Ast.Clflush (g, i) -> Ast.Clflush (g, fold_expr i)
  | Ast.Lfence -> Ast.Lfence

(* ---- global layout ---------------------------------------------------------- *)

let global_layout (p : Ast.program) =
  let next = ref (Workloads.Layout.benign_data_base + 0x2_0000) in
  List.map
    (fun (g : Ast.global_decl) ->
      match g.Ast.base with
      | Some b -> (g.Ast.gname, b, g.Ast.stride)
      | None ->
        let b = !next in
        (* 64-byte-align each array and keep a guard line between them *)
        next := b + (((g.Ast.count * g.Ast.stride) + 127) land lnot 63);
        (g.Ast.gname, b, g.Ast.stride))
    p.Ast.globals

(* ---- code generation ---------------------------------------------------------- *)

(* argument registers, SysV-flavoured *)
let arg_regs = [ R.RDI; R.RSI; R.RDX; R.RCX ]

type env = {
  b : B.t;
  globals : (string * (int * int)) list; (* name -> base, stride *)
  funcs : (string * int) list;           (* name -> arity *)
  locals : (string, int) Hashtbl.t;      (* name -> rbp-relative slot disp *)
  mutable nslots : int;
  optimize : bool;
}

let local_slot env name =
  match Hashtbl.find_opt env.locals name with
  | Some d -> d
  | None -> fail "unknown variable %S" name

let declare_local env name =
  if Hashtbl.mem env.locals name then local_slot env name
  else begin
    env.nslots <- env.nslots + 1;
    let disp = -8 * env.nslots in
    Hashtbl.replace env.locals name disp;
    disp
  end

let global_of env name =
  match List.assoc_opt name env.globals with
  | Some bs -> bs
  | None -> fail "unknown global %S" name

let emit env i = B.emit env.b i

(* Evaluate [e] into RAX.  Intermediates go through the machine stack, so
   nested calls are safe. *)
let rec eval env e =
  match e with
  | Ast.Int v -> emit env (I.Mov (O.reg R.RAX, O.imm v))
  | Ast.Var x ->
    emit env (I.Mov (O.reg R.RAX, O.mem ~base:R.RBP ~disp:(local_slot env x) ()))
  | Ast.Global (g, idx) ->
    let base, stride = global_of env g in
    eval env idx;
    emit env (I.Mov (O.reg R.RAX, O.mem ~index:R.RAX ~scale:stride ~disp:base ()))
  | Ast.Neg a ->
    eval env a;
    emit env (I.Mov (O.reg R.RBX, O.reg R.RAX));
    emit env (I.Mov (O.reg R.RAX, O.imm 0));
    emit env (I.Sub (O.reg R.RAX, O.reg R.RBX))
  | Ast.Rdtsc -> emit env I.Rdtsc
  | Ast.Call (f, args) -> eval_call env f args
  | Ast.Bin (op, a, b) -> eval_bin env op a b

and eval_call env f args =
  let arity =
    match List.assoc_opt f env.funcs with
    | Some a -> a
    | None -> fail "unknown function %S" f
  in
  if List.length args <> arity then
    fail "%S expects %d arguments, got %d" f arity (List.length args);
  if arity > List.length arg_regs then
    fail "%S: at most %d arguments supported" f (List.length arg_regs);
  (* evaluate left-to-right, park on the stack, then pop into arg regs *)
  List.iter
    (fun a ->
      eval env a;
      emit env (I.Push (O.reg R.RAX)))
    args;
  List.iteri
    (fun i _ -> emit env (I.Pop (List.nth arg_regs (arity - 1 - i))))
    args;
  emit env (I.Call ("fn_" ^ f))

and eval_bin env op a b =
  match op with
  | Ast.Shl | Ast.Shr -> (
    match b with
    | Ast.Int k when k >= 0 && k < 63 ->
      eval env a;
      emit env (if op = Ast.Shl then I.Shl (O.reg R.RAX, k) else I.Shr (O.reg R.RAX, k))
    | Ast.Int k -> fail "shift amount %d out of range" k
    | _ -> fail "shift amounts must be integer literals")
  | _ -> (
    (* optimized path: literal right operand skips the push/pop protocol *)
    match b with
    | Ast.Int v when env.optimize && is_direct_op op ->
      eval env a;
      emit_direct env op (O.imm v)
    | _ ->
      eval env a;
      emit env (I.Push (O.reg R.RAX));
      eval env b;
      emit env (I.Mov (O.reg R.RBX, O.reg R.RAX));
      emit env (I.Pop R.RAX);
      emit_op env op)

and is_direct_op = function
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.BAnd | Ast.BOr | Ast.BXor -> true
  | _ -> false

and emit_direct env op rhs =
  match op with
  | Ast.Add -> emit env (I.Add (O.reg R.RAX, rhs))
  | Ast.Sub -> emit env (I.Sub (O.reg R.RAX, rhs))
  | Ast.Mul -> emit env (I.Imul (O.reg R.RAX, rhs))
  | Ast.BAnd -> emit env (I.And (O.reg R.RAX, rhs))
  | Ast.BOr -> emit env (I.Or (O.reg R.RAX, rhs))
  | Ast.BXor -> emit env (I.Xor (O.reg R.RAX, rhs))
  | _ -> assert false

and emit_op env op =
  (* lhs in RAX, rhs in RBX *)
  match op with
  | Ast.Add -> emit env (I.Add (O.reg R.RAX, O.reg R.RBX))
  | Ast.Sub -> emit env (I.Sub (O.reg R.RAX, O.reg R.RBX))
  | Ast.Mul -> emit env (I.Imul (O.reg R.RAX, O.reg R.RBX))
  | Ast.BAnd -> emit env (I.And (O.reg R.RAX, O.reg R.RBX))
  | Ast.BOr -> emit env (I.Or (O.reg R.RAX, O.reg R.RBX))
  | Ast.BXor -> emit env (I.Xor (O.reg R.RAX, O.reg R.RBX))
  | Ast.Shl | Ast.Shr -> assert false
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
    let cond =
      match op with
      | Ast.Eq -> I.Eq | Ast.Ne -> I.Ne | Ast.Lt -> I.Lt
      | Ast.Le -> I.Le | Ast.Gt -> I.Gt | _ -> I.Ge
    in
    (* materialize the flag as 0/1 through branches, like -O0 output *)
    let yes = B.fresh_label env.b "cmp_true" in
    let done_ = B.fresh_label env.b "cmp_done" in
    emit env (I.Cmp (O.reg R.RAX, O.reg R.RBX));
    emit env (I.Jcc (cond, yes));
    emit env (I.Mov (O.reg R.RAX, O.imm 0));
    emit env (I.Jmp done_);
    B.label env.b yes;
    emit env (I.Mov (O.reg R.RAX, O.imm 1));
    B.label env.b done_

let emit_epilogue env =
  emit env (I.Mov (O.reg R.RSP, O.reg R.RBP));
  emit env (I.Pop R.RBP);
  emit env I.Ret

let rec emit_stmt env s =
  match s with
  | Ast.Decl (x, e) ->
    let disp = declare_local env x in
    eval env e;
    emit env (I.Mov (O.mem ~base:R.RBP ~disp (), O.reg R.RAX))
  | Ast.Assign (x, e) ->
    let disp = local_slot env x in
    eval env e;
    emit env (I.Mov (O.mem ~base:R.RBP ~disp (), O.reg R.RAX))
  | Ast.Store (g, idx, e) ->
    let base, stride = global_of env g in
    eval env e;
    emit env (I.Push (O.reg R.RAX));
    eval env idx;
    emit env (I.Mov (O.reg R.RBX, O.reg R.RAX));
    emit env (I.Pop R.RAX);
    emit env (I.Mov (O.mem ~index:R.RBX ~scale:stride ~disp:base (), O.reg R.RAX))
  | Ast.If (cond, then_, else_) ->
    let else_l = B.fresh_label env.b "else" in
    let end_l = B.fresh_label env.b "endif" in
    eval env cond;
    emit env (I.Cmp (O.reg R.RAX, O.imm 0));
    emit env (I.Jcc (I.Eq, else_l));
    List.iter (emit_stmt env) then_;
    emit env (I.Jmp end_l);
    B.label env.b else_l;
    List.iter (emit_stmt env) else_;
    B.label env.b end_l
  | Ast.While (cond, body) ->
    let head = B.fresh_label env.b "while" in
    let end_l = B.fresh_label env.b "endwhile" in
    B.label env.b head;
    eval env cond;
    emit env (I.Cmp (O.reg R.RAX, O.imm 0));
    emit env (I.Jcc (I.Eq, end_l));
    List.iter (emit_stmt env) body;
    emit env (I.Jmp head);
    B.label env.b end_l
  | Ast.Return e ->
    eval env e;
    emit_epilogue env
  | Ast.ExprStmt e -> eval env e
  | Ast.Clflush (g, idx) ->
    let base, stride = global_of env g in
    eval env idx;
    emit env (I.Clflush (O.mem ~index:R.RAX ~scale:stride ~disp:base ()))
  | Ast.Lfence -> emit env I.Lfence

(* count the local slots a function needs (params + every Decl) *)
let rec count_decls stmts =
  List.fold_left
    (fun n s ->
      n
      +
      match s with
      | Ast.Decl _ -> 1
      | Ast.If (_, t, f) -> count_decls t + count_decls f
      | Ast.While (_, b) -> count_decls b
      | _ -> 0)
    0 stmts

let emit_func env_proto (f : Ast.func) =
  let env = { env_proto with locals = Hashtbl.create 16; nslots = 0 } in
  B.label env.b ("fn_" ^ f.Ast.name);
  (* prologue *)
  emit env (I.Push (O.reg R.RBP));
  emit env (I.Mov (O.reg R.RBP, O.reg R.RSP));
  let frame = (List.length f.Ast.params + count_decls f.Ast.body) * 8 in
  if frame > 0 then emit env (I.Sub (O.reg R.RSP, O.imm frame));
  (* spill parameters into their slots *)
  List.iteri
    (fun i p ->
      if i >= List.length arg_regs then
        fail "%S: at most %d parameters supported" f.Ast.name
          (List.length arg_regs);
      let disp = declare_local env p in
      emit env (I.Mov (O.mem ~base:R.RBP ~disp (), O.reg (List.nth arg_regs i))))
    f.Ast.params;
  List.iter (emit_stmt env) f.Ast.body;
  (* implicit return 0 *)
  emit env (I.Mov (O.reg R.RAX, O.imm 0));
  emit_epilogue env

let compile ?(optimize = false) ?base ?(name = "minc") (p : Ast.program) =
  let p =
    if optimize then
      {
        p with
        Ast.funcs =
          List.map
            (fun f -> { f with Ast.body = List.map fold_stmt f.Ast.body })
            p.Ast.funcs;
      }
    else p
  in
  if not (List.exists (fun f -> f.Ast.name = "main") p.Ast.funcs) then
    fail "no main function";
  let b = B.create () in
  let env =
    {
      b;
      globals =
        List.map (fun (n, base, stride) -> (n, (base, stride))) (global_layout p);
      funcs = List.map (fun f -> (f.Ast.name, List.length f.Ast.params)) p.Ast.funcs;
      locals = Hashtbl.create 16;
      nslots = 0;
      optimize;
    }
  in
  (* entry stub: call main, halt on return *)
  B.emit b (I.Call "fn_main");
  B.emit b I.Halt;
  List.iter (emit_func env) p.Ast.funcs;
  B.to_program ?base ~name b

let compile_source ?optimize ?base ?name src =
  compile ?optimize ?base ?name (Parser.parse src)
