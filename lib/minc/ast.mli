(** Abstract syntax of MinC, the mini-language compiled to the simulated
    ISA.

    MinC exists because SCAGuard's instruction normalization is motivated by
    {e compiler-introduced} variation: with a compiler in the loop, the same
    source can be lowered in different ways (optimization levels standing in
    for different compilers) and the similarity comparison has to see through
    it.  It also makes workloads writable as source, including attacks — the
    language exposes [clflush]/[rdtsc]/[lfence] intrinsics. *)

type binop =
  | Add | Sub | Mul
  | BAnd | BOr | BXor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | Int of int                     (** literal *)
  | Var of string                  (** local variable or parameter *)
  | Global of string * expr        (** [name[index]] — global array cell *)
  | Bin of binop * expr * expr
  | Neg of expr
  | Call of string * expr list
  | Rdtsc                          (** cycle counter intrinsic *)

type stmt =
  | Decl of string * expr          (** [var x = e;] *)
  | Assign of string * expr        (** [x = e;] *)
  | Store of string * expr * expr  (** [name[i] = e;] *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Return of expr
  | ExprStmt of expr               (** call for effect *)
  | Clflush of string * expr       (** [clflush(name[i]);] intrinsic *)
  | Lfence                         (** serialization intrinsic *)

type func = {
  name : string;
  params : string list;
  body : stmt list;
}

type global_decl = {
  gname : string;
  count : int;            (** element count *)
  stride : int;           (** bytes between elements (default 8) *)
  base : int option;      (** fixed base address, e.g. the shared library *)
}
(** [global name[count : stride] @ base;] — stride and base optional. *)

type program = {
  globals : global_decl list;
  funcs : func list;      (** execution starts at ["main"] *)
}

val binop_to_string : binop -> string
