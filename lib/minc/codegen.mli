(** MinC → ISA code generation.

    The generator is a classic -O0-style stack machine: expressions evaluate
    into RAX with intermediates pushed, locals live in an RBP frame, and
    comparisons materialize 0/1 through branches — producing the branchy,
    push/pop-heavy shape real unoptimized compiler output has.

    [optimize:true] stands in for "a different compiler": constant folding
    plus an immediate-operand path that skips the push/pop protocol when a
    binary operand is a literal.  Same semantics, visibly different
    instruction sequences — exactly the variation SCAGuard's instruction
    normalization must absorb. *)

exception Error of string
(** Semantic errors: unknown variable/global/function, arity mismatch,
    variable shift amount, missing [main]. *)

val compile :
  ?optimize:bool -> ?base:int -> ?name:string -> Ast.program -> Isa.Program.t
(** Execution starts at [main] (entered via [call]); its return halts the
    machine.  @raise Error as above. *)

val compile_source :
  ?optimize:bool -> ?base:int -> ?name:string -> string -> Isa.Program.t
(** Parse and compile MinC source text.
    @raise Parser.Error / Lexer.Error / Error. *)

val global_layout : Ast.program -> (string * int * int) list
(** [(name, base, stride)] for every global, fixed-base ones at their
    requested addresses, the rest allocated in the benign data region. *)
