(* The fixed base addresses below mirror Workloads.Layout: the shared
   library at 0x30000000 (page-stride lines) and the attacker results area.
   MinC sources carry them literally, like real PoCs carry mmap'ed
   addresses. *)

let flush_reload_source =
  Printf.sprintf
    {|
// Flush+Reload, written in MinC and compiled to the simulated ISA.
global shared[8 : 4096] @ %d;
global results[16] @ %d;

fn main() {
  var round = 0;
  while (round < 16) {
    // flush phase
    var i = 0;
    while (i < 8) {
      clflush(shared[i]);
      i = i + 1;
    }
    // give the victim a chance to touch its lines
    var w = 0;
    while (w < 60) {
      w = w + 1;
    }
    // timed reload phase
    i = 0;
    while (i < 8) {
      lfence();
      var t0 = rdtsc();
      var v = shared[i];
      var dt = rdtsc() - t0;
      if (dt < 150) {
        results[i] = results[i] + 1;
      }
      i = i + 1;
    }
    round = round + 1;
  }
  return 0;
}
|}
    Workloads.Layout.shared_lib_base Workloads.Layout.attacker_results_base

let benign_sources =
  [
    ( "bubble",
      {|
global a[32];
global out[1];

fn main() {
  // fill with a descending sequence, then bubble it ascending
  var i = 0;
  while (i < 32) {
    a[i] = 32 - i;
    i = i + 1;
  }
  var pass = 0;
  while (pass < 32) {
    var j = 0;
    while (j < 31) {
      if (a[j] > a[j + 1]) {
        var t = a[j];
        a[j] = a[j + 1];
        a[j + 1] = t;
      }
      j = j + 1;
    }
    pass = pass + 1;
  }
  out[0] = a[0] + a[31] * 100;
  return a[0];
}
|} );
    ( "checksum",
      {|
global data[64];
global out[1];

fn mix(h, v) {
  return ((h * 31) ^ v) & 0xFFFFFF;
}

fn main() {
  var i = 0;
  while (i < 64) {
    data[i] = i * 7 + 3;
    i = i + 1;
  }
  var h = 0;
  i = 0;
  while (i < 64) {
    h = mix(h, data[i]);
    i = i + 1;
  }
  out[0] = h;
  return h;
}
|} );
    ( "table-walk",
      {|
global table[256 : 64];
global out[1];

fn main() {
  var i = 0;
  while (i < 256) {
    table[i] = (i * 167) & 255;
    i = i + 1;
  }
  var x = 1;
  var s = 0;
  var step = 0;
  while (step < 300) {
    x = table[x];
    s = s + x;
    x = (x + step) & 255;
    step = step + 1;
  }
  out[0] = s;
  return s;
}
|} );
  ]
