(** Recursive-descent parser for MinC.

    Top level: [global name\[count : stride\] @ base;] declarations and
    [fn name(params) { ... }] definitions.  Statements: [var x = e;],
    assignments, array stores, [if]/[else], [while], [return], intrinsic
    calls ([clflush(arr\[i\]);], [lfence();]) and expression statements.
    Expressions use precedence climbing over
    comparisons < [|] < [^] < [&] < shifts < [+ -] < [*], with integer
    literals, variables, array loads, calls, [rdtsc()], unary minus and
    parentheses as primaries. *)

exception Error of string

val parse : string -> Ast.program
(** @raise Error on syntax errors, [Lexer.Error] on lexical ones. *)
