let rec expr = function
  | Ast.Int v -> if v < 0 then Printf.sprintf "(-%d)" (-v) else string_of_int v
  | Ast.Var x -> x
  | Ast.Global (g, i) -> Printf.sprintf "%s[%s]" g (expr i)
  | Ast.Neg e -> Printf.sprintf "(-%s)" (expr e)
  | Ast.Bin (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr a) (Ast.binop_to_string op) (expr b)
  | Ast.Call (f, args) ->
    Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr args))
  | Ast.Rdtsc -> "rdtsc()"

let rec stmt ?(indent = 1) s =
  let pad = String.make (indent * 2) ' ' in
  let block body =
    String.concat "\n" (List.map (stmt ~indent:(indent + 1)) body)
  in
  match s with
  | Ast.Decl (x, e) -> Printf.sprintf "%svar %s = %s;" pad x (expr e)
  | Ast.Assign (x, e) -> Printf.sprintf "%s%s = %s;" pad x (expr e)
  | Ast.Store (g, i, e) ->
    Printf.sprintf "%s%s[%s] = %s;" pad g (expr i) (expr e)
  | Ast.If (c, t, []) ->
    Printf.sprintf "%sif (%s) {\n%s\n%s}" pad (expr c) (block t) pad
  | Ast.If (c, t, f) ->
    Printf.sprintf "%sif (%s) {\n%s\n%s} else {\n%s\n%s}" pad (expr c)
      (block t) pad (block f) pad
  | Ast.While (c, b) ->
    Printf.sprintf "%swhile (%s) {\n%s\n%s}" pad (expr c) (block b) pad
  | Ast.Return e -> Printf.sprintf "%sreturn %s;" pad (expr e)
  | Ast.ExprStmt e -> Printf.sprintf "%s%s;" pad (expr e)
  | Ast.Clflush (g, i) -> Printf.sprintf "%sclflush(%s[%s]);" pad g (expr i)
  | Ast.Lfence -> Printf.sprintf "%slfence();" pad

let func (f : Ast.func) =
  Printf.sprintf "fn %s(%s) {\n%s\n}" f.Ast.name
    (String.concat ", " f.Ast.params)
    (String.concat "\n" (List.map (stmt ~indent:1) f.Ast.body))

let global (g : Ast.global_decl) =
  let stride = if g.Ast.stride = 8 then "" else Printf.sprintf " : %d" g.Ast.stride in
  let base =
    match g.Ast.base with
    | Some b -> Printf.sprintf " @ %d" b
    | None -> ""
  in
  Printf.sprintf "global %s[%d%s]%s;" g.Ast.gname g.Ast.count stride base

let program (p : Ast.program) =
  String.concat "\n\n"
    (List.map global p.Ast.globals @ List.map func p.Ast.funcs)
  ^ "\n"
