type edge = { u : int; v : int; weight : float; payload : int list }

(* Prim with a plain scan instead of a heap: the relevant-node sets are small
   (tens of blocks), so O(n^2) is ample. *)
let maximum_spanning_forest ~nodes ~edges =
  let in_tree = Hashtbl.create 16 in
  let covered n = Hashtbl.mem in_tree n in
  let adjacent n =
    List.filter (fun e -> e.u = n || e.v = n) edges
  in
  let result = ref [] in
  let grow_component seed =
    Hashtbl.replace in_tree seed ();
    let frontier = ref (adjacent seed) in
    let continue = ref true in
    while !continue do
      (* Best edge with exactly one endpoint in the tree. *)
      let best = ref None in
      List.iter
        (fun e ->
          let cu = covered e.u and cv = covered e.v in
          if cu <> cv then
            match !best with
            | Some b when e.weight <= b.weight -> ()
            | Some _ | None -> best := Some e)
        !frontier;
      match !best with
      | None -> continue := false
      | Some e ->
        result := e :: !result;
        let fresh = if covered e.u then e.v else e.u in
        Hashtbl.replace in_tree fresh ();
        frontier := adjacent fresh @ !frontier
    done
  in
  List.iter (fun n -> if not (covered n) then grow_component n) nodes;
  List.rev !result
