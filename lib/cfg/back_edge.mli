(** Back-edge (cycle) elimination — step 1 of Algorithm 1, which needs a
    loop-free graph before path enumeration. *)

val find : Graph.t -> (int * int) list
(** Back edges found by iterative DFS from the entry block (edges into a node
    currently on the DFS stack), plus a second pass over blocks unreachable
    from the entry so that every cycle is broken. *)

val acyclic_succs : Graph.t -> int list array
(** Successor lists of the CFG with the back edges of {!find} removed.
    The result is a DAG over the same block ids. *)
