(** The control flow graph of a program (Definition 1), built statically from
    branch targets — the role Angr plays for the paper. *)

type t

val of_program : Isa.Program.t -> t
(** Split the program at leaders (entry, branch targets, fall-throughs after
    branches) and connect blocks: conditional branches get both edges, calls
    get the callee-entry edge and the return-site fall-through edge, [ret]
    and [hlt] end paths. *)

val program : t -> Isa.Program.t
val n_blocks : t -> int
val block : t -> int -> Basic_block.t
val blocks : t -> Basic_block.t list
val succs : t -> int -> int list
(** Successor block ids, ascending, duplicate-free. *)

val preds : t -> int -> int list

val block_of_index : t -> int -> Basic_block.t
(** Block containing an instruction index.
    @raise Invalid_argument when out of range. *)

val block_of_addr : t -> int -> Basic_block.t option
(** Block containing an instruction address, if within the program. *)

val entry : t -> int
(** Id of the entry block (always 0). *)

val edges : t -> (int * int) list
(** All edges, lexicographic. *)

val n_edges : t -> int
val pp : Format.formatter -> t -> unit
