(** Maximum spanning forest over the attack-relevant blocks — step 4 of
    Algorithm 1 (Prim's algorithm with maximized weights).

    Nodes are block ids; each candidate edge carries the restored CFG path it
    stands for.  Disconnected relevant blocks yield a spanning {e forest}
    (one tree per connected component), so no relevant block is dropped. *)

type edge = {
  u : int;
  v : int;
  weight : float;
  payload : int list;  (** the underlying CFG path from [u] to [v] *)
}

val maximum_spanning_forest : nodes:int list -> edges:edge list -> edge list
(** Edges of the maximum spanning forest of the undirected view of [edges]
    over [nodes].  Runs Prim from each not-yet-covered node. *)
