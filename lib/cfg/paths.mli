(** Bounded path enumeration between attack-relevant blocks on the acyclic
    CFG — step 3 of Algorithm 1.

    For a pair [(src, dst)] of relevant blocks, valid paths go from [src] to
    [dst] without passing through any {e other} relevant block.  Each path is
    scored with the paper's attack-correlation value [V_p]: the mean HPC value
    of its interior blocks, or [max_score] when [src -> dst] is a direct
    edge. *)

type path = {
  nodes : int list;  (** block ids from [src] to [dst], inclusive *)
  score : float;     (** the paper's V_p *)
}

val max_score : float
(** The paper's MAX constant for directly connected pairs. *)

val best_between :
  succs:int list array ->
  hpc:(int -> float) ->
  relevant:(int -> bool) ->
  ?max_paths:int ->
  ?max_len:int ->
  src:int -> dst:int -> unit ->
  path option
(** Highest-scoring valid path from [src] to [dst] on the DAG [succs].
    Enumeration explores at most [max_paths] complete paths (default 500) of
    at most [max_len] nodes (default 64) — caps that keep Algorithm 1
    polynomial on branchy CFGs; [None] when no valid path exists. *)
