let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | '\n' -> "\\n"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let default_label (b : Basic_block.t) =
  Printf.sprintf "BB%d (%d)" b.Basic_block.id (Basic_block.size b)

let of_graph ?(highlight = []) ?(label_of = default_label) g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph cfg {\n  node [shape=box, fontname=\"monospace\"];\n";
  List.iter
    (fun (b : Basic_block.t) ->
      let id = b.Basic_block.id in
      let style =
        if List.mem id highlight then
          ", style=filled, fillcolor=\"#ffd0d0\""
        else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\"%s];\n" id (escape (label_of b)) style))
    (Graph.blocks g);
  List.iter
    (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" a b))
    (Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let of_attack_graph g ~relevant ~nodes ~edges =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "digraph attack_graph {\n  node [shape=box, fontname=\"monospace\"];\n";
  List.iter
    (fun (b : Basic_block.t) ->
      let id = b.Basic_block.id in
      let style =
        if List.mem id relevant then "style=filled, fillcolor=\"#ff9090\""
        else if List.mem id nodes then "style=solid, color=\"#c04040\""
        else "style=dotted, color=gray"
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\", %s];\n" id
           (escape (default_label b)) style))
    (Graph.blocks g);
  (* CFG edges dotted, attack-graph edges solid *)
  List.iter
    (fun (a, b) ->
      let style =
        if List.mem (a, b) edges then "[penwidth=2, color=\"#c04040\"]"
        else "[style=dotted, color=gray]"
      in
      Buffer.add_string buf (Printf.sprintf "  n%d -> n%d %s;\n" a b style))
    (Graph.edges g);
  (* attack-graph edges that are not CFG edges (restored paths collapse) *)
  List.iter
    (fun (a, b) ->
      if not (List.mem (a, b) (Graph.edges g)) then
        Buffer.add_string buf
          (Printf.sprintf "  n%d -> n%d [penwidth=2, color=\"#c04040\"];\n" a b))
    edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
