type path = { nodes : int list; score : float }

let max_score = 1e12

let score_of_interior hpc = function
  | [] -> max_score
  | interior ->
    List.fold_left (fun s v -> s +. hpc v) 0.0 interior
    /. float_of_int (List.length interior)

let best_between ~succs ~hpc ~relevant ?(max_paths = 500) ?(max_len = 64)
    ~src ~dst () =
  let best = ref None in
  let found = ref 0 in
  let consider rev_interior =
    incr found;
    let interior = List.rev rev_interior in
    let p =
      { nodes = (src :: interior) @ [ dst ];
        score = score_of_interior hpc interior }
    in
    match !best with
    | Some b when p.score <= b.score -> ()
    | Some _ | None -> best := Some p
  in
  (* DFS on the acyclic successor lists.  [rev_interior] holds the path's
     interior nodes (everything strictly between [src] and [dst]) reversed.
     Interior nodes must not be relevant; [dst] itself may equal [src] only
     through a genuine (non-empty) path, which the DAG rules out, so self
     pairs simply find nothing. *)
  let rec dfs node rev_interior len =
    if !found >= max_paths || len > max_len then ()
    else
      List.iter
        (fun next ->
          if next = dst then consider rev_interior
          else if not (relevant next) then
            dfs next (next :: rev_interior) (len + 1))
        succs.(node)
  in
  dfs src [] 1;
  !best
