(** Graphviz (DOT) rendering of CFGs — the standard way to eyeball what the
    pipeline extracted. *)

val of_graph :
  ?highlight:int list ->
  ?label_of:(Basic_block.t -> string) ->
  Graph.t -> string
(** DOT source for a CFG.  [highlight] block ids are filled (the
    attack-relevant set); [label_of] defaults to the block id plus its
    instruction count. *)

val of_attack_graph :
  Graph.t -> relevant:int list -> nodes:int list -> edges:(int * int) list ->
  string
(** DOT source for an attack-relevant graph laid over its CFG: relevant
    blocks are filled, restored interiors outlined, everything else dotted. *)
