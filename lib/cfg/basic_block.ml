type t = { id : int; first : int; last : int }

let size t = t.last - t.first + 1

let instr_indices t = List.init (size t) (fun i -> t.first + i)

let instrs prog t =
  List.map (fun i -> Isa.Program.instr prog i) (instr_indices t)

let addrs prog t =
  List.map (fun i -> Isa.Program.addr_of_index prog i) (instr_indices t)

let first_addr prog t = Isa.Program.addr_of_index prog t.first

let contains_index t i = i >= t.first && i <= t.last

let is_attack_ground_truth prog t =
  List.exists
    (fun i -> Isa.Program.has_tag prog i Isa.Program.attack_tag)
    (instr_indices t)

let pp fmt t = Format.fprintf fmt "BB%d[%d..%d]" t.id t.first t.last
