(** Basic blocks: maximal straight-line instruction ranges of a program
    (Definition 1). *)

type t = {
  id : int;     (** dense index in the owning CFG *)
  first : int;  (** index of the first instruction (the leader) *)
  last : int;   (** index of the last instruction, inclusive *)
}

val size : t -> int
(** Number of instructions. *)

val instr_indices : t -> int list
(** [first; ...; last]. *)

val instrs : Isa.Program.t -> t -> Isa.Instr.t list
(** The block's instructions in order. *)

val addrs : Isa.Program.t -> t -> int list
(** Instruction addresses of the block. *)

val first_addr : Isa.Program.t -> t -> int

val contains_index : t -> int -> bool

val is_attack_ground_truth : Isa.Program.t -> t -> bool
(** True when any instruction of the block carries
    {!Isa.Program.attack_tag} — the Table IV ground truth. *)

val pp : Format.formatter -> t -> unit
