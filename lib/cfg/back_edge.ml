(* Iterative coloured DFS: white = unvisited, grey = on stack, black = done.
   An edge to a grey node is a back edge. *)

let find g =
  let n = Graph.n_blocks g in
  let colour = Array.make n `White in
  let back = ref [] in
  let rec visit u =
    colour.(u) <- `Grey;
    List.iter
      (fun v ->
        match colour.(v) with
        | `Grey -> back := (u, v) :: !back
        | `White -> visit v
        | `Black -> ())
      (Graph.succs g u);
    colour.(u) <- `Black
  in
  visit (Graph.entry g);
  (* Unreachable components can still contain cycles; sweep them too. *)
  for u = 0 to n - 1 do
    if colour.(u) = `White then visit u
  done;
  List.rev !back

let acyclic_succs g =
  let back = find g in
  let is_back a b = List.mem (a, b) back in
  Array.init (Graph.n_blocks g) (fun u ->
      List.filter (fun v -> not (is_back u v)) (Graph.succs g u))
