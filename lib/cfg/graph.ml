module I = Isa.Instr
module P = Isa.Program

type t = {
  program : P.t;
  blocks : Basic_block.t array;
  succs : int list array;
  preds : int list array;
  owner_of_index : int array; (* instruction index -> block id *)
}

let leaders prog =
  let n = P.length prog in
  let is_leader = Array.make n false in
  is_leader.(0) <- true;
  Array.iteri
    (fun i ins ->
      (match I.branch_target ins with
      | Some l -> is_leader.(P.label_index prog l) <- true
      | None -> ());
      if I.is_branch ins && i + 1 < n then is_leader.(i + 1) <- true)
    (P.code prog);
  is_leader

let of_program prog =
  let n = P.length prog in
  let is_leader = leaders prog in
  (* Carve blocks: a block runs from a leader to the next leader - 1 or to a
     branch instruction, whichever comes first. *)
  let rev_blocks = ref [] in
  let owner_of_index = Array.make n (-1) in
  let id = ref 0 in
  let i = ref 0 in
  while !i < n do
    let first = !i in
    let j = ref !i in
    let continue = ref true in
    while !continue do
      owner_of_index.(!j) <- !id;
      if
        I.is_branch (P.instr prog !j)
        || !j + 1 >= n
        || is_leader.(!j + 1)
      then continue := false
      else incr j
    done;
    rev_blocks := { Basic_block.id = !id; first; last = !j } :: !rev_blocks;
    incr id;
    i := !j + 1
  done;
  let blocks = Array.of_list (List.rev !rev_blocks) in
  let nb = Array.length blocks in
  let succ_sets = Array.make nb [] in
  let add_edge a b =
    if not (List.mem b succ_sets.(a)) then succ_sets.(a) <- b :: succ_sets.(a)
  in
  Array.iter
    (fun (b : Basic_block.t) ->
      let last = P.instr prog b.Basic_block.last in
      let fallthrough () =
        if b.Basic_block.last + 1 < n then
          add_edge b.Basic_block.id owner_of_index.(b.Basic_block.last + 1)
      in
      match last with
      | I.Jmp l -> add_edge b.Basic_block.id owner_of_index.(P.label_index prog l)
      | I.Jcc (_, l) ->
        add_edge b.Basic_block.id owner_of_index.(P.label_index prog l);
        fallthrough ()
      | I.Call l ->
        add_edge b.Basic_block.id owner_of_index.(P.label_index prog l);
        (* The static return edge: control comes back to the fall-through. *)
        fallthrough ()
      | I.Ret | I.Halt -> ()
      | _ -> fallthrough ())
    blocks;
  let succs = Array.map (fun l -> List.sort_uniq Int.compare l) succ_sets in
  let preds = Array.make nb [] in
  Array.iteri
    (fun a ss -> List.iter (fun b -> preds.(b) <- a :: preds.(b)) ss)
    succs;
  let preds = Array.map (fun l -> List.sort_uniq Int.compare l) preds in
  { program = prog; blocks; succs; preds; owner_of_index }

let program t = t.program
let n_blocks t = Array.length t.blocks

let block t i =
  if i < 0 || i >= Array.length t.blocks then invalid_arg "Cfg.Graph.block";
  t.blocks.(i)

let blocks t = Array.to_list t.blocks
let succs t i = t.succs.(i)
let preds t i = t.preds.(i)

let block_of_index t i =
  if i < 0 || i >= Array.length t.owner_of_index then
    invalid_arg "Cfg.Graph.block_of_index";
  t.blocks.(t.owner_of_index.(i))

let block_of_addr t addr =
  Option.map (block_of_index t) (P.index_of_addr t.program addr)

let entry _ = 0

let edges t =
  let acc = ref [] in
  for a = Array.length t.succs - 1 downto 0 do
    List.iter (fun b -> acc := (a, b) :: !acc) (List.rev t.succs.(a))
  done;
  List.sort compare !acc

let n_edges t = Array.fold_left (fun n l -> n + List.length l) 0 t.succs

let pp fmt t =
  Format.fprintf fmt "@[<v>CFG of %s: %d blocks, %d edges@," (P.name t.program)
    (n_blocks t) (n_edges t);
  Array.iter
    (fun (b : Basic_block.t) ->
      Format.fprintf fmt "  %a -> %s@," Basic_block.pp b
        (String.concat "," (List.map string_of_int t.succs.(b.Basic_block.id))))
    t.blocks;
  Format.fprintf fmt "@]"
