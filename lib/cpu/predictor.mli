(** Branch prediction: a table of 2-bit saturating counters indexed by branch
    address, plus a branch-target-buffer presence set (its cold misses feed
    the "Branch Load Miss" HPC event).

    Spectre-style attacks rely on training these counters: repeated taken (or
    not-taken) outcomes steer the transient path at the mispredicted
    occurrence. *)

type t

val create : ?entries:int -> unit -> t
(** [entries] must be a power of two (default 1024). *)

val predict_taken : t -> pc:int -> bool
(** Current prediction for the conditional branch at [pc]. *)

val update : t -> pc:int -> taken:bool -> unit
(** Train with the resolved outcome. *)

val btb_seen : t -> pc:int -> bool
(** Whether the branch at [pc] has a BTB entry. *)

val btb_insert : t -> pc:int -> unit

val reset : t -> unit
