let alu = 1
let imul = 3
let branch = 1
let mispredict_penalty = 15
let fence = 20
let rdtsc = 25
let nop = 1

let cost = function
  | Isa.Instr.Imul _ -> imul
  | Isa.Instr.Jmp _ | Isa.Instr.Jcc _ | Isa.Instr.Call _ | Isa.Instr.Ret ->
    branch
  | Isa.Instr.Mfence | Isa.Instr.Lfence | Isa.Instr.Cpuid -> fence
  | Isa.Instr.Rdtsc | Isa.Instr.Rdtscp -> rdtsc
  | Isa.Instr.Nop | Isa.Instr.Halt -> nop
  | Isa.Instr.Mov _ | Isa.Instr.Lea _ | Isa.Instr.Add _ | Isa.Instr.Sub _
  | Isa.Instr.Xor _ | Isa.Instr.And _ | Isa.Instr.Or _ | Isa.Instr.Shl _
  | Isa.Instr.Shr _ | Isa.Instr.Inc _ | Isa.Instr.Dec _ | Isa.Instr.Cmp _
  | Isa.Instr.Test _ | Isa.Instr.Push _ | Isa.Instr.Pop _
  | Isa.Instr.Clflush _ | Isa.Instr.Prefetch _ -> alu
