type t = {
  regs : int array;
  mem : (int, int) Hashtbl.t;
  mutable zf : bool;
  mutable sf : bool;
  mutable cf : bool;
  mutable pc : int;
  mutable halted : bool;
}

(* The default stack top sits at LLC set 27, away from the set-0-aligned
   regions the cache-attack workloads monitor. *)
let create ?(stack_top = 0x7FFF_0000 + (27 * 64)) () =
  let regs = Array.make Isa.Reg.count 0 in
  regs.(Isa.Reg.index Isa.Reg.RSP) <- stack_top;
  { regs; mem = Hashtbl.create 1024; zf = false; sf = false; cf = false;
    pc = 0; halted = false }

let get_reg t r = t.regs.(Isa.Reg.index r)
let set_reg t r v = t.regs.(Isa.Reg.index r) <- v

let load t addr = Option.value ~default:0 (Hashtbl.find_opt t.mem addr)
let store t addr v = Hashtbl.replace t.mem addr v

let init_region t ~base values =
  Array.iteri (fun i v -> store t (base + (8 * i)) v) values

let zf t = t.zf
let sf t = t.sf
let cf t = t.cf

let set_flags t ~zf ~sf ~cf =
  t.zf <- zf;
  t.sf <- sf;
  t.cf <- cf

let cond_holds t = function
  | Isa.Instr.Eq -> t.zf
  | Isa.Instr.Ne -> not t.zf
  | Isa.Instr.Lt -> t.sf
  | Isa.Instr.Le -> t.zf || t.sf
  | Isa.Instr.Gt -> (not t.zf) && not t.sf
  | Isa.Instr.Ge -> not t.sf
  | Isa.Instr.Ult -> t.cf
  | Isa.Instr.Uge -> not t.cf

let pc t = t.pc
let set_pc t v = t.pc <- v

let halted t = t.halted
let set_halted t v = t.halted <- v

let snapshot t =
  {
    regs = Array.copy t.regs;
    mem = Hashtbl.copy t.mem;
    zf = t.zf;
    sf = t.sf;
    cf = t.cf;
    pc = t.pc;
    halted = t.halted;
  }

let mem_size t = Hashtbl.length t.mem

let fold_mem t ~init ~f = Hashtbl.fold f t.mem init
