(** Architectural state of one simulated hardware thread: register file,
    flags, sparse byte-addressed memory and program counter (as an
    instruction index into its program). *)

type t

val create : ?stack_top:int -> unit -> t
(** Fresh state: registers zero except RSP = [stack_top] (default
    [0x7FFF_06C0], chosen off the cache sets attacks monitor), flags clear,
    empty memory, pc 0. *)

val get_reg : t -> Isa.Reg.t -> int
val set_reg : t -> Isa.Reg.t -> int -> unit

val load : t -> int -> int
(** Architectural memory read; uninitialized locations read as 0. *)

val store : t -> int -> int -> unit

val init_region : t -> base:int -> int array -> unit
(** [init_region t ~base values] writes [values.(i)] at [base + 8*i] —
    convenient 8-byte-stride table initialization. *)

(** Flags set by compare/ALU instructions. *)
val zf : t -> bool
val sf : t -> bool
val cf : t -> bool
val set_flags : t -> zf:bool -> sf:bool -> cf:bool -> unit

val cond_holds : t -> Isa.Instr.cond -> bool
(** Evaluate a branch condition against the current flags. *)

val pc : t -> int
val set_pc : t -> int -> unit

val halted : t -> bool
val set_halted : t -> bool -> unit

val snapshot : t -> t
(** Deep copy (used to fork transient execution). *)

val mem_size : t -> int
(** Number of touched memory locations. *)

val fold_mem : t -> init:'a -> f:(int -> int -> 'a -> 'a) -> 'a
(** Fold over all touched memory locations (address, value) in unspecified
    order — used by equivalence checks and diagnostics. *)
