type t = {
  counters : int array; (* 2-bit: 0,1 -> not taken; 2,3 -> taken *)
  mask : int;
  btb : (int, unit) Hashtbl.t;
}

let create ?(entries = 1024) () =
  if entries <= 0 || entries land (entries - 1) <> 0 then
    invalid_arg "Predictor.create: entries must be a power of two";
  (* Weakly not-taken start: forward branches default to fall-through, which
     is the common compiler assumption. *)
  { counters = Array.make entries 1; mask = entries - 1; btb = Hashtbl.create 64 }

let slot t pc = (pc lsr 2) land t.mask

let predict_taken t ~pc = t.counters.(slot t pc) >= 2

let update t ~pc ~taken =
  let i = slot t pc in
  let c = t.counters.(i) in
  t.counters.(i) <- (if taken then min 3 (c + 1) else max 0 (c - 1))

let btb_seen t ~pc = Hashtbl.mem t.btb pc
let btb_insert t ~pc = Hashtbl.replace t.btb pc ()

let reset t =
  Array.fill t.counters 0 (Array.length t.counters) 1;
  Hashtbl.reset t.btb
