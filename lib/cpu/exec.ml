module I = Isa.Instr
module O = Isa.Operand
module P = Isa.Program

type settings = {
  spec_window : int;
  quantum : int;
  victim_quantum : int;
  fuel : int;
  protected_range : (int * int) option;
      (* [lo, hi): kernel-style memory; architectural loads fault, but the
         fault retires late enough for dependent transient work to leave
         cache footprints — the Meltdown window *)
}

let default_settings =
  {
    spec_window = 48;
    quantum = 64;
    victim_quantum = 64;
    fuel = 2_000_000;
    protected_range = None;
  }

exception Fault of int
(* raised by an architectural access to the protected range *)

(* Programs may install a "signal handler" by binding this label; a fault
   transfers control there (the PoC's recovery path).  Without one, the
   faulting process is killed. *)
let fault_handler_label = "__fault_handler"

type result = {
  instructions : int;
  cycles : int;
  halted_normally : bool;
  collector : Hpc.Collector.t;
  hierarchy : Cache.Hierarchy.t;
  machine : Machine.t;
}

type proc = {
  prog : P.t;
  mach : Machine.t;
  owner : Cache.Owner.t;
  pred : Predictor.t;
  collect : Hpc.Collector.t option;
  spec : bool; (* transient execution modelled for this process *)
  hier : Cache.Hierarchy.t; (* this process's cache view: the same as the
                               peer's under SMT, a private-L1 view under the
                               cross-core topology *)
  mutable now : int; (* per-process cycle clock: processes model two cores
                        sharing caches, so one does not stall the other *)
  mutable in_transient : bool; (* protection checks are deferred on the
                                  transient path (Meltdown) *)
}

type global = { settings : settings }

let ev proc ~pc e =
  match proc.collect with
  | Some c -> Hpc.Collector.record_event c ~pc e
  | None -> ()

let acc proc ~pc ~target kind =
  match proc.collect with
  | Some c -> Hpc.Collector.record_access c ~pc ~target ~kind ~time:proc.now
  | None -> ()

let eff_addr mach (m : O.mem) =
  let read = function Some r -> Machine.get_reg mach r | None -> 0 in
  m.O.disp + read m.O.base + (read m.O.index * m.O.scale)

let protected_fault g proc addr =
  (not proc.in_transient)
  &&
  match g.settings.protected_range with
  | Some (lo, hi) -> addr >= lo && addr < hi
  | None -> false

let data_load g proc mach ~pc addr =
  let oc = Cache.Hierarchy.load proc.hier ~owner:proc.owner addr in
  proc.now <- proc.now + oc.Cache.Hierarchy.latency;
  if oc.Cache.Hierarchy.l1_hit then ev proc ~pc Hpc.Event.L1d_load_hit
  else begin
    ev proc ~pc Hpc.Event.L1d_load_miss;
    if oc.Cache.Hierarchy.llc_hit then ev proc ~pc Hpc.Event.Llc_load_hit
    else begin
      ev proc ~pc Hpc.Event.Llc_load_miss;
      ev proc ~pc Hpc.Event.Cache_miss
    end
  end;
  acc proc ~pc ~target:addr Hpc.Collector.Load;
  (* The line is fetched (cache side effects above are real) before the
     permission check retires — faults are precise architecturally but late
     micro-architecturally. *)
  if protected_fault g proc addr then raise (Fault addr);
  Machine.load mach addr

let data_store _g proc mach ~pc addr value =
  let oc = Cache.Hierarchy.store proc.hier ~owner:proc.owner addr in
  proc.now <- proc.now + oc.Cache.Hierarchy.latency;
  if oc.Cache.Hierarchy.l1_hit then ev proc ~pc Hpc.Event.L1d_store_hit
  else if oc.Cache.Hierarchy.llc_hit then ev proc ~pc Hpc.Event.Llc_store_hit
  else begin
    ev proc ~pc Hpc.Event.Llc_store_miss;
    ev proc ~pc Hpc.Event.Cache_miss
  end;
  acc proc ~pc ~target:addr Hpc.Collector.Store;
  Machine.store mach addr value

let eval g proc mach ~pc = function
  | O.Imm i -> i
  | O.Reg r -> Machine.get_reg mach r
  | O.Mem m -> data_load g proc mach ~pc (eff_addr mach m)

let write g proc mach ~pc dst value =
  match dst with
  | O.Reg r -> Machine.set_reg mach r value
  | O.Mem m -> data_store g proc mach ~pc (eff_addr mach m) value
  | O.Imm _ -> invalid_arg "Exec: immediate as destination"

let arith_flags mach result ~cf =
  Machine.set_flags mach ~zf:(result = 0) ~sf:(result < 0) ~cf

(* Read-modify-write binary ALU op. *)
let binop g proc mach ~pc dst src f ~cf_of =
  let a = eval g proc mach ~pc dst in
  let b = eval g proc mach ~pc src in
  let r = f a b in
  arith_flags mach r ~cf:(cf_of a b);
  write g proc mach ~pc dst r

let rsp = Isa.Reg.RSP
let rax = Isa.Reg.RAX

(* Execute the instruction at [mach]'s pc; returns whether an instruction
   actually retired (false when the pc ran off the program, which just
   halts).  [transient] suppresses predictor training, BB-retirement notes
   and nested speculation; cache effects and HPC events still happen — that
   persistence is the Spectre channel. *)
let rec step g proc mach ~transient =
  proc.in_transient <- transient;
  let idx = Machine.pc mach in
  if idx < 0 || idx >= P.length proc.prog then begin
    Machine.set_halted mach true;
    false
  end
  else try begin
    let pc = P.addr_of_index proc.prog idx in
    let fo = Cache.Hierarchy.ifetch proc.hier ~owner:proc.owner pc in
    proc.now <- proc.now + fo.Cache.Hierarchy.latency;
    if not fo.Cache.Hierarchy.l1_hit then begin
      ev proc ~pc Hpc.Event.L1i_load_miss;
      if not fo.Cache.Hierarchy.llc_hit then ev proc ~pc Hpc.Event.Cache_miss
    end;
    if not transient then begin
      match proc.collect with
      | Some c -> Hpc.Collector.note_executed c ~pc ~time:proc.now
      | None -> ()
    end;
    let ins = P.instr proc.prog idx in
    proc.now <- proc.now + Timing.cost ins;
    let next = idx + 1 in
    Machine.set_pc mach next;
    (match ins with
    | I.Mov (dst, src) ->
      let v = eval g proc mach ~pc src in
      write g proc mach ~pc dst v
    | I.Lea (r, op) -> begin
      match op with
      | O.Mem m -> Machine.set_reg mach r (eff_addr mach m)
      | O.Imm _ | O.Reg _ -> invalid_arg "Exec: lea needs a memory operand"
    end
    | I.Add (d, s) -> binop g proc mach ~pc d s ( + ) ~cf_of:(fun _ _ -> false)
    | I.Sub (d, s) -> binop g proc mach ~pc d s ( - ) ~cf_of:(fun a b -> a < b)
    | I.Imul (d, s) -> binop g proc mach ~pc d s ( * ) ~cf_of:(fun _ _ -> false)
    | I.Xor (d, s) -> binop g proc mach ~pc d s ( lxor ) ~cf_of:(fun _ _ -> false)
    | I.And (d, s) -> binop g proc mach ~pc d s ( land ) ~cf_of:(fun _ _ -> false)
    | I.Or (d, s) -> binop g proc mach ~pc d s ( lor ) ~cf_of:(fun _ _ -> false)
    | I.Shl (d, n) ->
      let a = eval g proc mach ~pc d in
      let r = a lsl n in
      arith_flags mach r ~cf:false;
      write g proc mach ~pc d r
    | I.Shr (d, n) ->
      let a = eval g proc mach ~pc d in
      let r = a lsr n in
      arith_flags mach r ~cf:false;
      write g proc mach ~pc d r
    | I.Inc d ->
      let r = eval g proc mach ~pc d + 1 in
      (* x86 inc/dec leave CF untouched. *)
      Machine.set_flags mach ~zf:(r = 0) ~sf:(r < 0) ~cf:(Machine.cf mach);
      write g proc mach ~pc d r
    | I.Dec d ->
      let r = eval g proc mach ~pc d - 1 in
      Machine.set_flags mach ~zf:(r = 0) ~sf:(r < 0) ~cf:(Machine.cf mach);
      write g proc mach ~pc d r
    | I.Cmp (a, b) ->
      let x = eval g proc mach ~pc a in
      let y = eval g proc mach ~pc b in
      Machine.set_flags mach ~zf:(x = y) ~sf:(x - y < 0) ~cf:(x < y)
    | I.Test (a, b) ->
      let x = eval g proc mach ~pc a in
      let y = eval g proc mach ~pc b in
      let r = x land y in
      Machine.set_flags mach ~zf:(r = 0) ~sf:(r < 0) ~cf:false
    | I.Jmp l ->
      if not transient then note_btb g proc ~pc;
      Machine.set_pc mach (P.label_index proc.prog l)
    | I.Jcc (c, l) -> exec_jcc g proc mach ~transient ~pc ~idx c l
    | I.Call l ->
      if not transient then note_btb g proc ~pc;
      let sp = Machine.get_reg mach rsp - 8 in
      Machine.set_reg mach rsp sp;
      data_store g proc mach ~pc sp next;
      Machine.set_pc mach (P.label_index proc.prog l)
    | I.Ret ->
      let sp = Machine.get_reg mach rsp in
      let target = data_load g proc mach ~pc sp in
      Machine.set_reg mach rsp (sp + 8);
      if target < 0 || target >= P.length proc.prog then
        Machine.set_halted mach true
      else Machine.set_pc mach target
    | I.Push s ->
      let v = eval g proc mach ~pc s in
      let sp = Machine.get_reg mach rsp - 8 in
      Machine.set_reg mach rsp sp;
      data_store g proc mach ~pc sp v
    | I.Pop r ->
      let sp = Machine.get_reg mach rsp in
      let v = data_load g proc mach ~pc sp in
      Machine.set_reg mach rsp (sp + 8);
      Machine.set_reg mach r v
    | I.Clflush op -> begin
      match op with
      | O.Mem m ->
        let addr = eff_addr mach m in
        let latency = Cache.Hierarchy.flush proc.hier addr in
        proc.now <- proc.now + latency;
        acc proc ~pc ~target:addr Hpc.Collector.Flush
      | O.Imm _ | O.Reg _ -> invalid_arg "Exec: clflush needs a memory operand"
    end
    | I.Prefetch op -> begin
      match op with
      | O.Mem m -> ignore (data_load g proc mach ~pc (eff_addr mach m))
      | O.Imm _ | O.Reg _ -> invalid_arg "Exec: prefetch needs a memory operand"
    end
    | I.Mfence | I.Lfence | I.Cpuid ->
      (* Serializing: a transient (mispredicted-path) execution cannot
         proceed past a fence — the property real attacks use to keep
         run-ahead loads out of their timing windows. *)
      if transient then Machine.set_halted mach true
    | I.Rdtsc | I.Rdtscp ->
      Machine.set_reg mach rax proc.now;
      ev proc ~pc Hpc.Event.Timestamp
    | I.Nop -> ()
    | I.Halt -> Machine.set_halted mach true);
    true
  end
  with Fault _ when not transient ->
    (* Deferred-fault transient window: re-run the faulting instruction and
       its dependents on a shadow (loads from the protected range succeed
       there), leaving only cache footprints; then deliver the fault. *)
    if proc.spec && g.settings.spec_window > 0 then
      run_transient g proc ~from:idx;
    (match P.label_index proc.prog fault_handler_label with
    | handler -> Machine.set_pc mach handler
    | exception Not_found -> Machine.set_halted mach true);
    true

and note_btb g proc ~pc =
  ignore g;
  if not (Predictor.btb_seen proc.pred ~pc) then begin
    ev proc ~pc Hpc.Event.Branch_load_miss;
    Predictor.btb_insert proc.pred ~pc
  end

and exec_jcc g proc mach ~transient ~pc ~idx cond label =
  let target = P.label_index proc.prog label in
  let taken = Machine.cond_holds mach cond in
  if not transient then begin
    note_btb g proc ~pc;
    let predicted = Predictor.predict_taken proc.pred ~pc in
    Predictor.update proc.pred ~pc ~taken;
    if predicted <> taken then begin
      ev proc ~pc Hpc.Event.Branch_miss;
      proc.now <- proc.now + Timing.mispredict_penalty;
      if proc.spec && g.settings.spec_window > 0 then
        run_transient g proc ~from:(if predicted then target else idx + 1)
    end
  end;
  Machine.set_pc mach (if taken then target else idx + 1)

(* Transient execution down the mispredicted path: runs on a snapshot whose
   architectural effects are discarded, while cache fills/evictions and HPC
   events go through the real shared hierarchy. *)
and run_transient g proc ~from =
  let shadow = Machine.snapshot proc.mach in
  Machine.set_pc shadow from;
  (* Wrong-path work overlaps the pipeline flush on a real core; its latency
     is covered by the mispredict penalty, so the architectural clock is
     restored afterwards.  Cache effects persist. *)
  let saved_now = proc.now in
  let steps = ref 0 in
  while (not (Machine.halted shadow)) && !steps < g.settings.spec_window do
    ignore (step g proc shadow ~transient:true);
    incr steps
  done;
  proc.in_transient <- false;
  proc.now <- saved_now

let run ?(settings = default_settings) ?hierarchy ?victim_hierarchy ?init
    ?victim prog =
  let hier =
    match hierarchy with Some h -> h | None -> Cache.Hierarchy.create ()
  in
  (* the victim shares the attacker's full view (SMT) unless its own
     cross-core view is supplied *)
  let victim_hier = Option.value ~default:hier victim_hierarchy in
  let g = { settings } in
  let collector = Hpc.Collector.create () in
  let att =
    {
      prog;
      mach = Machine.create ();
      owner = Cache.Owner.Attacker;
      pred = Predictor.create ();
      collect = Some collector;
      spec = true;
      hier;
      now = 0;
      in_transient = false;
    }
  in
  (match init with Some f -> f att.mach | None -> ());
  let vic =
    Option.map
      (fun (vprog, vinit) ->
        let mach = Machine.create ~stack_top:(0x7FFE_0000 + (43 * 64)) () in
        vinit mach;
        {
          prog = vprog;
          mach;
          owner = Cache.Owner.Victim;
          pred = Predictor.create ();
          collect = None;
          spec = false;
          hier = victim_hier;
          now = 0;
          in_transient = false;
        })
      victim
  in
  let count = ref 0 in
  while (not (Machine.halted att.mach)) && !count < settings.fuel do
    let n = ref 0 in
    while
      (not (Machine.halted att.mach))
      && !n < settings.quantum && !count < settings.fuel
    do
      if step g att att.mach ~transient:false then begin
        incr n;
        incr count
      end
    done;
    match vic with
    | None -> ()
    | Some v ->
      (* A halted victim restarts: it models a continuously running
         process. *)
      if Machine.halted v.mach then begin
        Machine.set_pc v.mach 0;
        Machine.set_halted v.mach false
      end;
      let m = ref 0 in
      while (not (Machine.halted v.mach)) && !m < settings.victim_quantum do
        ignore (step g v v.mach ~transient:false);
        incr m
      done
  done;
  {
    instructions = !count;
    cycles = att.now;
    halted_normally = Machine.halted att.mach;
    collector;
    hierarchy = hier;
    machine = att.mach;
  }

let run_addresses ?hierarchy ~owner accesses =
  let hier =
    match hierarchy with Some h -> h | None -> Cache.Hierarchy.create ()
  in
  List.iter
    (fun (addr, kind) ->
      match kind with
      | Hpc.Collector.Load -> ignore (Cache.Hierarchy.load hier ~owner addr)
      | Hpc.Collector.Store -> ignore (Cache.Hierarchy.store hier ~owner addr)
      | Hpc.Collector.Flush -> ignore (Cache.Hierarchy.flush hier addr))
    accesses;
  hier
