(** The execution engine.

    Runs a program to completion on a simulated core with: split L1 + LLC
    caches, a 2-bit branch predictor, bounded transient execution on
    mispredicted conditional branches (whose cache side effects persist after
    the squash — the property Spectre-style attacks need), and optional
    round-robin interleaving with a victim program sharing the caches.

    While the main ("attacker") program runs, every HPC event of Table I is
    recorded against the address of the instruction causing it, and every
    data access and flush is recorded with its target address and cycle
    timestamp — the simulation stands in for perf-intel-pt and Intel PT. *)

type settings = {
  spec_window : int;
    (** max transiently executed instructions per mispredict; 0 disables
        transient execution *)
  quantum : int;         (** main-program instructions per scheduling slice *)
  victim_quantum : int;  (** victim instructions per slice *)
  fuel : int;            (** hard bound on main-program instructions *)
  protected_range : (int * int) option;
    (** [Some (lo, hi)]: kernel-style protected memory [lo, hi).  An
        architectural load from it faults — but, as on pre-KAISER hardware,
        the fault retires late enough that the load's dependents execute
        transiently and leave cache footprints: the Meltdown window.  The
        faulting program continues at the label {!fault_handler_label} if it
        binds one (a signal handler), else it is killed. *)
}

val default_settings : settings
(** [spec_window = 48], [quantum = 64], [victim_quantum = 64],
    [fuel = 2_000_000], [protected_range = None]. *)

val fault_handler_label : string
(** ["__fault_handler"] — bind this label to install a fault handler. *)

type result = {
  instructions : int;        (** main-program instructions retired *)
  cycles : int;              (** final value of the shared cycle clock *)
  halted_normally : bool;    (** [true] if the program reached [Halt]/fell off
                                 the end; [false] if fuel ran out *)
  collector : Hpc.Collector.t;  (** runtime data of the main program *)
  hierarchy : Cache.Hierarchy.t;  (** final cache state *)
  machine : Machine.t;       (** final architectural state of the main program *)
}

val run :
  ?settings:settings ->
  ?hierarchy:Cache.Hierarchy.t ->
  ?victim_hierarchy:Cache.Hierarchy.t ->
  ?init:(Machine.t -> unit) ->
  ?victim:Isa.Program.t * (Machine.t -> unit) ->
  Isa.Program.t ->
  result
(** [run prog] executes [prog] as the attacker-owned main program.  [init]
    prepares its memory/registers.  [victim] is an optional co-running
    program (cache owner [Victim]) that is restarted whenever it halts, so it
    behaves as a continuously active process.  By default the victim shares
    [hierarchy] (SMT co-residency); pass the second half of
    {!Cache.Hierarchy.create_cross_core} as [victim_hierarchy] for the
    cross-core topology (private L1s, shared LLC). *)

val run_addresses :
  ?hierarchy:Cache.Hierarchy.t -> owner:Cache.Owner.t ->
  (int * Hpc.Collector.access_kind) list -> Cache.Hierarchy.t
(** [run_addresses ~owner accs] replays bare memory accesses through a cache
    hierarchy (no program semantics) — the "cache simulator" role of CST
    measurement (§III-A3).  Returns the hierarchy for state inspection. *)
