(** Base instruction costs (cycles), excluding memory-hierarchy latency which
    {!Cache.Hierarchy} charges separately. *)

val alu : int
(** Simple ALU op / mov between registers. *)

val imul : int
val branch : int
(** Correctly predicted branch. *)

val mispredict_penalty : int
(** Extra cycles charged when a conditional branch mispredicts. *)

val fence : int
(** mfence / lfence / cpuid. *)

val rdtsc : int
val nop : int

val cost : Isa.Instr.t -> int
(** Base cost of one instruction (memory latency not included). *)
