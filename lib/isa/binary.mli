(** Binary encoding of programs — the "ELF" of the simulated world.

    SCAGuard is a tool that takes {e binaries}; this codec gives programs a
    durable byte format so the CLI can assemble PoCs to files and the
    detection pipeline can start from a file on disk.

    The format serializes the code, base address and label table.
    Generator tags (the attack-relevant ground truth) are lab metadata and
    deliberately {e not} part of a binary — a decoded program carries none,
    exactly like a real-world target. *)

val magic : string
(** ["SCAB1"]. *)

val encode : Program.t -> string
(** Serialize to bytes. *)

val decode : string -> Program.t
(** @raise Failure on malformed input (bad magic, truncation, unknown
    opcodes, out-of-range label references). *)

val write_file : path:string -> Program.t -> unit
val read_file : path:string -> Program.t
