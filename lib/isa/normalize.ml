let operand = function
  | Operand.Imm _ -> "imm"
  | Operand.Reg _ -> "reg"
  | Operand.Mem _ -> "mem"

let instr ins =
  match Instr.operands ins with
  | [] -> Instr.mnemonic ins
  | ops -> Instr.mnemonic ins ^ " " ^ String.concat "," (List.map operand ops)

let sequence instrs = Array.of_list (List.map instr instrs)
