type stmt = Ins of Instr.t | Lbl of string

type t = {
  name : string;
  base : int;
  code : Instr.t array;
  label_tbl : (string, int) Hashtbl.t;
  tag_arr : string list array;
}

let attack_tag = "attack"

let assemble ?(base = 0x400000) ?(tags = []) ~name stmts =
  let label_tbl = Hashtbl.create 16 in
  let rev_code = ref [] in
  let count = ref 0 in
  List.iter
    (function
      | Ins ins ->
        rev_code := ins :: !rev_code;
        incr count
      | Lbl l ->
        if Hashtbl.mem label_tbl l then
          invalid_arg (Printf.sprintf "Program.assemble: duplicate label %S" l);
        Hashtbl.replace label_tbl l !count)
    stmts;
  let code = Array.of_list (List.rev !rev_code) in
  if Array.length code = 0 then invalid_arg "Program.assemble: empty program";
  (* A label at the very end (after the last instruction) would dangle; treat
     it as pointing past the end only if some branch needs it — reject to keep
     execution total. *)
  Hashtbl.iter
    (fun l i ->
      if i >= Array.length code then
        invalid_arg (Printf.sprintf "Program.assemble: label %S past end" l))
    label_tbl;
  Array.iter
    (fun ins ->
      match Instr.branch_target ins with
      | Some l when not (Hashtbl.mem label_tbl l) ->
        invalid_arg (Printf.sprintf "Program.assemble: unbound label %S" l)
      | Some _ | None -> ())
    code;
  let tag_arr = Array.make (Array.length code) [] in
  List.iter
    (fun (i, ts) ->
      if i >= 0 && i < Array.length code then
        tag_arr.(i) <- ts @ tag_arr.(i))
    tags;
  { name; base; code; label_tbl; tag_arr }

let name t = t.name
let base t = t.base
let code t = t.code
let length t = Array.length t.code

let instr t i =
  if i < 0 || i >= Array.length t.code then invalid_arg "Program.instr";
  t.code.(i)

let addr_of_index t i = t.base + (4 * i)

let index_of_addr t a =
  let off = a - t.base in
  if off < 0 || off mod 4 <> 0 then None
  else
    let i = off / 4 in
    if i < Array.length t.code then Some i else None

let label_index t l = Hashtbl.find t.label_tbl l

let labels t =
  Hashtbl.fold (fun l i acc -> (l, i) :: acc) t.label_tbl []
  |> List.sort (fun (_, a) (_, b) -> Int.compare a b)

let tags t i = if i >= 0 && i < Array.length t.tag_arr then t.tag_arr.(i) else []

let has_tag t i tag = List.mem tag (tags t i)

let tagged_indices t tag =
  let acc = ref [] in
  for i = Array.length t.tag_arr - 1 downto 0 do
    if List.mem tag t.tag_arr.(i) then acc := i :: !acc
  done;
  !acc

type item = { labels : string list; ins : Instr.t; item_tags : string list }

let deconstruct t =
  let by_index = Hashtbl.create 16 in
  Hashtbl.iter
    (fun l i ->
      Hashtbl.replace by_index i
        (l :: Option.value ~default:[] (Hashtbl.find_opt by_index i)))
    t.label_tbl;
  List.init (Array.length t.code) (fun i ->
      {
        labels =
          List.sort String.compare
            (Option.value ~default:[] (Hashtbl.find_opt by_index i));
        ins = t.code.(i);
        item_tags = t.tag_arr.(i);
      })

let reconstruct ?base ~name items =
  let stmts =
    List.concat_map
      (fun it -> List.map (fun l -> Lbl l) it.labels @ [ Ins it.ins ])
      items
  in
  let tags = List.mapi (fun i it -> (i, it.item_tags)) items in
  assemble ?base ~tags ~name stmts

let rename_labels f items =
  List.map
    (fun it ->
      { it with labels = List.map f it.labels; ins = Instr.map_target f it.ins })
    items

let splice ?base ~name parts =
  let n_parts = List.length parts in
  let entry i = Printf.sprintf "__part%d_entry" i in
  let all =
    List.concat
      (List.mapi
         (fun i part ->
           let prefix l = Printf.sprintf "p%d__%s" i l in
           let items = rename_labels prefix (deconstruct part) in
           (* Mark this part's entry point... *)
           let items =
             match items with
             | first :: rest ->
               { first with labels = entry i :: first.labels } :: rest
             | [] -> []
           in
           (* ...and chain: a Halt inside a non-final part jumps to the next
              part instead of stopping (any trailing code, e.g. functions
              placed after the halt, stays unreachable-but-present exactly as
              in the original program). *)
           if i = n_parts - 1 then items
           else
             List.map
               (fun it ->
                 match it.ins with
                 | Instr.Halt -> { it with ins = Instr.Jmp (entry (i + 1)) }
                 | _ -> it)
               items)
         parts)
  in
  reconstruct ?base ~name all

let pp fmt t =
  let by_index = Hashtbl.create 16 in
  Hashtbl.iter
    (fun l i ->
      Hashtbl.replace by_index i
        (l :: (Option.value ~default:[] (Hashtbl.find_opt by_index i))))
    t.label_tbl;
  Format.fprintf fmt "@[<v>%s (base 0x%x, %d instrs)@," t.name t.base
    (Array.length t.code);
  Array.iteri
    (fun i ins ->
      (match Hashtbl.find_opt by_index i with
      | Some ls -> List.iter (fun l -> Format.fprintf fmt "%s:@," l) ls
      | None -> ());
      Format.fprintf fmt "  0x%x: %s@," (addr_of_index t i)
        (Instr.to_string ins))
    t.code;
  Format.fprintf fmt "@]"
