(** General-purpose registers of the simulated x86-like machine. *)

type t =
  | RAX | RBX | RCX | RDX | RSI | RDI | RBP | RSP
  | R8 | R9 | R10 | R11 | R12 | R13 | R14 | R15

val all : t list
(** Every register, in encoding order. *)

val count : int
(** Number of registers. *)

val index : t -> int
(** Dense index in [\[0, count)], for register files. *)

val of_index : int -> t
(** Inverse of {!index}.  @raise Invalid_argument when out of range. *)

val to_string : t -> string
(** Lower-case AT&T-style name, e.g. ["rax"]. *)

val scratch : t list
(** Registers that workload generators may freely allocate (excludes RSP and
    RBP, which the generated code uses as stack/frame anchors). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
