(** Imperative assembly builder used by the workload generators.

    A builder accumulates statements; [emit]ted instructions inherit the tags
    currently active (see {!with_tag}), which is how attack generators record
    the attack-relevant ground truth. *)

type t

val create : unit -> t

val emit : t -> Instr.t -> unit
(** Append one instruction. *)

val emit_all : t -> Instr.t list -> unit

val label : t -> string -> unit
(** Bind a label at the current position. *)

val fresh_label : t -> string -> string
(** [fresh_label t stem] returns a label name unique within this builder
    (["stem__0"], ["stem__1"], ...) without binding it. *)

val with_tag : t -> string -> (unit -> unit) -> unit
(** [with_tag t tag f] runs [f ()]; instructions emitted during [f] carry
    [tag] (in addition to any enclosing tags). *)

val mark_attack : t -> (unit -> unit) -> unit
(** [with_tag] specialized to {!Program.attack_tag}. *)

val position : t -> int
(** Number of instructions emitted so far. *)

val to_program : ?base:int -> name:string -> t -> Program.t
(** Assemble.  @raise Invalid_argument as {!Program.assemble}. *)
