(** Assembled programs: an instruction array with resolved labels, a base
    address, and per-instruction tags.

    Instruction [i] of a program with base address [b] lives at address
    [b + 4*i]; this plays the role of the ELF text layout that the paper's
    tooling (Angr / Intel PT) works with.

    Tags are generator-provided annotations.  Attack generators tag their
    attack-relevant instructions with {!attack_tag}, giving the ground truth
    that Table IV's accuracy is measured against. *)

type stmt =
  | Ins of Instr.t      (** an instruction *)
  | Lbl of string       (** a label binding the next instruction's index *)

type t

val attack_tag : string
(** The distinguished tag marking attack-relevant instructions. *)

val assemble : ?base:int -> ?tags:(int * string list) list -> name:string ->
  stmt list -> t
(** [assemble ~name stmts] resolves labels and checks that every branch
    target is bound exactly once and that the program is non-empty.
    [tags] maps instruction indices (post label-stripping) to tag lists;
    builders provide it.  [base] defaults to [0x400000].
    @raise Invalid_argument on duplicate/unbound labels or empty code. *)

val name : t -> string
val base : t -> int
val code : t -> Instr.t array
val length : t -> int
(** Number of instructions. *)

val instr : t -> int -> Instr.t
(** [instr p i] is instruction [i].  @raise Invalid_argument out of range. *)

val addr_of_index : t -> int -> int
(** Address of instruction [i]. *)

val index_of_addr : t -> int -> int option
(** Inverse of {!addr_of_index}; [None] for addresses outside the program. *)

val label_index : t -> string -> int
(** Index bound to a label.  @raise Not_found for unknown labels. *)

val labels : t -> (string * int) list
(** All labels with their indices, sorted by index. *)

val tags : t -> int -> string list
(** Tags of instruction [i] ([\[\]] when untagged). *)

val has_tag : t -> int -> string -> bool

val tagged_indices : t -> string -> int list
(** Indices carrying a given tag, ascending. *)

type item = {
  labels : string list;  (** labels bound just before this instruction *)
  ins : Instr.t;
  item_tags : string list;
}

val deconstruct : t -> item list
(** The program as a transformable item list; {!reconstruct} inverts it.
    Used by the mutation and obfuscation engines. *)

val reconstruct : ?base:int -> name:string -> item list -> t
(** Reassemble a (possibly transformed) item list into a program.
    @raise Invalid_argument as {!assemble}. *)

val rename_labels : (string -> string) -> item list -> item list
(** Apply a renaming to every bound label and branch target. *)

val splice : ?base:int -> name:string -> t list -> t
(** Concatenate programs into one, prefixing each part's labels so the
    namespaces stay disjoint.  Any [Halt] in a non-final part is replaced by
    [Nop] so control falls through to the next part. *)

val pp : Format.formatter -> t -> unit
(** Disassembly listing with addresses and labels. *)
