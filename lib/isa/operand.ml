type mem = {
  base : Reg.t option;
  index : Reg.t option;
  scale : int;
  disp : int;
}

type t = Imm of int | Reg of Reg.t | Mem of mem

let imm i = Imm i
let reg r = Reg r

let mem ?base ?index ?(scale = 1) ?(disp = 0) () =
  Mem { base; index; scale; disp }

let abs a = Mem { base = None; index = None; scale = 1; disp = a }

let is_mem = function Mem _ -> true | Imm _ | Reg _ -> false

let regs_read = function
  | Imm _ -> []
  | Reg r -> [ r ]
  | Mem m ->
    let add acc = function Some r -> r :: acc | None -> acc in
    add (add [] m.index) m.base

let mem_to_string m =
  let base = match m.base with Some r -> Reg.to_string r | None -> "" in
  let index =
    match m.index with
    | Some r when m.scale <> 1 -> Printf.sprintf "%s*%d" (Reg.to_string r) m.scale
    | Some r -> Reg.to_string r
    | None -> ""
  in
  let inner =
    match (base, index) with
    | "", "" -> ""
    | b, "" -> b
    | "", i -> i
    | b, i -> b ^ "+" ^ i
  in
  if inner = "" then Printf.sprintf "[0x%x]" m.disp
  else if m.disp = 0 then Printf.sprintf "[%s]" inner
  else Printf.sprintf "[%s%+d]" inner m.disp

let to_string = function
  | Imm i -> Printf.sprintf "$%d" i
  | Reg r -> "%" ^ Reg.to_string r
  | Mem m -> mem_to_string m

let pp fmt o = Format.pp_print_string fmt (to_string o)

let equal a b =
  match (a, b) with
  | Imm x, Imm y -> x = y
  | Reg x, Reg y -> Reg.equal x y
  | Mem x, Mem y ->
    Option.equal Reg.equal x.base y.base
    && Option.equal Reg.equal x.index y.index
    && x.scale = y.scale && x.disp = y.disp
  | (Imm _ | Reg _ | Mem _), _ -> false
