(** Instruction operands: immediates, registers and memory references with
    base + index*scale + displacement addressing. *)

type mem = {
  base : Reg.t option;   (** optional base register *)
  index : Reg.t option;  (** optional index register *)
  scale : int;           (** multiplier applied to the index register *)
  disp : int;            (** constant displacement *)
}
(** A memory reference; effective address is
    [disp + base + index * scale] with absent registers reading as 0. *)

type t =
  | Imm of int    (** immediate constant *)
  | Reg of Reg.t  (** register *)
  | Mem of mem    (** memory reference *)

val imm : int -> t
val reg : Reg.t -> t

val mem : ?base:Reg.t -> ?index:Reg.t -> ?scale:int -> ?disp:int -> unit -> t
(** Memory-operand constructor; [scale] defaults to 1, [disp] to 0. *)

val abs : int -> t
(** [abs a] is the absolute memory reference [Mem {disp = a; _}]. *)

val is_mem : t -> bool

val regs_read : t -> Reg.t list
(** Registers whose value the operand's address computation reads. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
