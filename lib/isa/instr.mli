(** Instructions of the simulated machine.

    The set is the subset of x86-64 that cache side-channel attacks and the
    benchmark workloads need: data movement, ALU ops, compares, branches,
    calls, cache maintenance ([clflush]), fences, and timestamp reads
    ([rdtsc]/[rdtscp]).  Branch targets are symbolic labels resolved by
    {!Program.assemble}. *)

type cond = Eq | Ne | Lt | Le | Gt | Ge | Ult | Uge
(** Branch conditions over the flags set by [Cmp]/[Test]; [Ult]/[Uge] are the
    unsigned comparisons (JB/JAE). *)

type t =
  | Mov of Operand.t * Operand.t  (** [Mov (dst, src)] *)
  | Lea of Reg.t * Operand.t      (** address computation, no memory access *)
  | Add of Operand.t * Operand.t
  | Sub of Operand.t * Operand.t
  | Imul of Operand.t * Operand.t
  | Xor of Operand.t * Operand.t
  | And of Operand.t * Operand.t
  | Or of Operand.t * Operand.t
  | Shl of Operand.t * int
  | Shr of Operand.t * int
  | Inc of Operand.t
  | Dec of Operand.t
  | Cmp of Operand.t * Operand.t
  | Test of Operand.t * Operand.t
  | Jmp of string
  | Jcc of cond * string
  | Call of string
  | Ret
  | Push of Operand.t
  | Pop of Reg.t
  | Clflush of Operand.t          (** flush the line of a memory operand *)
  | Prefetch of Operand.t         (** load into cache without register write *)
  | Mfence
  | Lfence
  | Cpuid                         (** serializing, no architectural effect here *)
  | Rdtsc                         (** cycle counter into RAX *)
  | Rdtscp                        (** serializing cycle counter into RAX *)
  | Nop
  | Halt                          (** stops the simulation *)

val mnemonic : t -> string
(** The instruction's operation name, e.g. ["mov"], ["clflush"]. *)

val operands : t -> Operand.t list
(** Operands in syntactic order ([dst] first where applicable). *)

val mem_operands : t -> Operand.mem list
(** Just the memory operands (used by trace collection). *)

val cond_to_string : cond -> string

val is_branch : t -> bool
(** True for [Jmp], [Jcc], [Call], [Ret], [Halt] — everything that ends a
    basic block. *)

val is_cond_branch : t -> bool

val branch_target : t -> string option
(** Label target of [Jmp]/[Jcc]/[Call], if any. *)

val reads_memory : t -> bool
(** True when executing the instruction loads from memory (includes
    [Prefetch]; excludes [Lea] and [Clflush]). *)

val writes_memory : t -> bool
(** True when executing the instruction stores to memory. *)

val map_target : (string -> string) -> t -> t
(** Rename the branch-target label, if any (used when splicing programs
    together to keep label namespaces disjoint). *)

val regs_read : t -> Reg.t list
(** Registers whose value the instruction reads (including address
    computation and implicit RSP uses), duplicate-free. *)

val regs_written : t -> Reg.t list
(** Registers the instruction writes (including implicit RSP/RAX). *)

val writes_flags : t -> bool
(** True when execution updates the flags. *)

val reads_flags : t -> bool
(** True for conditional branches. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
