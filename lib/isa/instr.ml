type cond = Eq | Ne | Lt | Le | Gt | Ge | Ult | Uge

type t =
  | Mov of Operand.t * Operand.t
  | Lea of Reg.t * Operand.t
  | Add of Operand.t * Operand.t
  | Sub of Operand.t * Operand.t
  | Imul of Operand.t * Operand.t
  | Xor of Operand.t * Operand.t
  | And of Operand.t * Operand.t
  | Or of Operand.t * Operand.t
  | Shl of Operand.t * int
  | Shr of Operand.t * int
  | Inc of Operand.t
  | Dec of Operand.t
  | Cmp of Operand.t * Operand.t
  | Test of Operand.t * Operand.t
  | Jmp of string
  | Jcc of cond * string
  | Call of string
  | Ret
  | Push of Operand.t
  | Pop of Reg.t
  | Clflush of Operand.t
  | Prefetch of Operand.t
  | Mfence
  | Lfence
  | Cpuid
  | Rdtsc
  | Rdtscp
  | Nop
  | Halt

let cond_to_string = function
  | Eq -> "e" | Ne -> "ne" | Lt -> "l" | Le -> "le"
  | Gt -> "g" | Ge -> "ge" | Ult -> "b" | Uge -> "ae"

let mnemonic = function
  | Mov _ -> "mov"
  | Lea _ -> "lea"
  | Add _ -> "add"
  | Sub _ -> "sub"
  | Imul _ -> "imul"
  | Xor _ -> "xor"
  | And _ -> "and"
  | Or _ -> "or"
  | Shl _ -> "shl"
  | Shr _ -> "shr"
  | Inc _ -> "inc"
  | Dec _ -> "dec"
  | Cmp _ -> "cmp"
  | Test _ -> "test"
  | Jmp _ -> "jmp"
  | Jcc (c, _) -> "j" ^ cond_to_string c
  | Call _ -> "call"
  | Ret -> "ret"
  | Push _ -> "push"
  | Pop _ -> "pop"
  | Clflush _ -> "clflush"
  | Prefetch _ -> "prefetch"
  | Mfence -> "mfence"
  | Lfence -> "lfence"
  | Cpuid -> "cpuid"
  | Rdtsc -> "rdtsc"
  | Rdtscp -> "rdtscp"
  | Nop -> "nop"
  | Halt -> "hlt"

let operands = function
  | Mov (a, b) | Add (a, b) | Sub (a, b) | Imul (a, b)
  | Xor (a, b) | And (a, b) | Or (a, b) | Cmp (a, b) | Test (a, b) -> [ a; b ]
  | Lea (r, m) -> [ Operand.Reg r; m ]
  | Shl (a, n) | Shr (a, n) -> [ a; Operand.Imm n ]
  | Inc a | Dec a | Push a | Clflush a | Prefetch a -> [ a ]
  | Pop r -> [ Operand.Reg r ]
  | Jmp _ | Jcc _ | Call _ | Ret | Mfence | Lfence | Cpuid | Rdtsc | Rdtscp
  | Nop | Halt -> []

let mem_operands ins =
  List.filter_map
    (function Operand.Mem m -> Some m | Operand.Imm _ | Operand.Reg _ -> None)
    (operands ins)

let is_branch = function
  | Jmp _ | Jcc _ | Call _ | Ret | Halt -> true
  | Mov _ | Lea _ | Add _ | Sub _ | Imul _ | Xor _ | And _ | Or _ | Shl _
  | Shr _ | Inc _ | Dec _ | Cmp _ | Test _ | Push _ | Pop _ | Clflush _
  | Prefetch _ | Mfence | Lfence | Cpuid | Rdtsc | Rdtscp | Nop -> false

let is_cond_branch = function Jcc _ -> true | _ -> false

let branch_target = function
  | Jmp l | Jcc (_, l) | Call l -> Some l
  | _ -> None

(* A memory *read* happens for any Mem operand that is dereferenced: loads,
   read-modify-write ALU ops, stores of Mem sources, Push of Mem, Prefetch.
   Lea only computes the address and Clflush touches the line without reading
   data. *)
let reads_memory ins =
  match ins with
  | Lea _ | Clflush _ -> false
  | Mov (_, src) -> Operand.is_mem src
  | Pop _ | Ret -> true
  | Prefetch _ -> true
  | Add (d, s) | Sub (d, s) | Imul (d, s) | Xor (d, s) | And (d, s)
  | Or (d, s) | Cmp (d, s) | Test (d, s) ->
    Operand.is_mem d || Operand.is_mem s
  | Shl (d, _) | Shr (d, _) | Inc d | Dec d -> Operand.is_mem d
  | Push s -> Operand.is_mem s
  | Jmp _ | Jcc _ | Call _ | Mfence | Lfence | Cpuid | Rdtsc | Rdtscp | Nop
  | Halt -> false

let writes_memory ins =
  match ins with
  | Mov (dst, _) -> Operand.is_mem dst
  | Add (d, _) | Sub (d, _) | Imul (d, _) | Xor (d, _) | And (d, _)
  | Or (d, _) | Shl (d, _) | Shr (d, _) | Inc d | Dec d -> Operand.is_mem d
  | Push _ | Call _ -> true
  | Lea _ | Cmp _ | Test _ | Jmp _ | Jcc _ | Ret | Pop _ | Clflush _
  | Prefetch _ | Mfence | Lfence | Cpuid | Rdtsc | Rdtscp | Nop | Halt -> false

let map_target f = function
  | Jmp l -> Jmp (f l)
  | Jcc (c, l) -> Jcc (c, f l)
  | Call l -> Call (f l)
  | ins -> ins

let dedup regs = List.sort_uniq Reg.compare regs

let addr_regs op = match op with
  | Operand.Mem m ->
    let add acc = function Some r -> r :: acc | None -> acc in
    add (add [] m.Operand.index) m.Operand.base
  | Operand.Imm _ | Operand.Reg _ -> []

let value_regs = function
  | Operand.Reg r -> [ r ]
  | Operand.Imm _ -> []
  | Operand.Mem _ as m -> addr_regs m

let regs_read ins =
  dedup
    (match ins with
    | Mov (dst, src) -> addr_regs dst @ value_regs src
    | Lea (_, m) -> addr_regs m
    | Add (d, s) | Sub (d, s) | Imul (d, s) | Xor (d, s) | And (d, s)
    | Or (d, s) | Cmp (d, s) | Test (d, s) -> value_regs d @ value_regs s
    | Shl (d, _) | Shr (d, _) | Inc d | Dec d -> value_regs d
    | Push s -> Reg.RSP :: value_regs s
    | Pop _ | Ret -> [ Reg.RSP ]
    | Call _ -> [ Reg.RSP ]
    | Clflush m | Prefetch m -> addr_regs m
    | Jmp _ | Jcc _ | Mfence | Lfence | Cpuid | Rdtsc | Rdtscp | Nop | Halt ->
      [])

let regs_written ins =
  dedup
    (match ins with
    | Mov (Operand.Reg r, _) | Lea (r, _) -> [ r ]
    | Mov ((Operand.Mem _ | Operand.Imm _), _) -> []
    | Add (Operand.Reg r, _) | Sub (Operand.Reg r, _)
    | Imul (Operand.Reg r, _) | Xor (Operand.Reg r, _)
    | And (Operand.Reg r, _) | Or (Operand.Reg r, _)
    | Shl (Operand.Reg r, _) | Shr (Operand.Reg r, _)
    | Inc (Operand.Reg r) | Dec (Operand.Reg r) -> [ r ]
    | Add _ | Sub _ | Imul _ | Xor _ | And _ | Or _ | Shl _ | Shr _ | Inc _
    | Dec _ -> []
    | Push _ | Call _ | Ret -> [ Reg.RSP ]
    | Pop r -> [ r; Reg.RSP ]
    | Rdtsc | Rdtscp -> [ Reg.RAX ]
    | Cmp _ | Test _ | Jmp _ | Jcc _ | Clflush _ | Prefetch _ | Mfence
    | Lfence | Cpuid | Nop | Halt -> [])

let writes_flags = function
  | Add _ | Sub _ | Imul _ | Xor _ | And _ | Or _ | Shl _ | Shr _ | Inc _
  | Dec _ | Cmp _ | Test _ -> true
  | Mov _ | Lea _ | Jmp _ | Jcc _ | Call _ | Ret | Push _ | Pop _
  | Clflush _ | Prefetch _ | Mfence | Lfence | Cpuid | Rdtsc | Rdtscp | Nop
  | Halt -> false

let reads_flags = function Jcc _ -> true | _ -> false

let to_string ins =
  match ins with
  | Jmp l -> Printf.sprintf "jmp %s" l
  | Jcc (c, l) -> Printf.sprintf "j%s %s" (cond_to_string c) l
  | Call l -> Printf.sprintf "call %s" l
  | Shl (a, n) -> Printf.sprintf "shl %s, $%d" (Operand.to_string a) n
  | Shr (a, n) -> Printf.sprintf "shr %s, $%d" (Operand.to_string a) n
  | _ ->
    let ops = operands ins in
    if ops = [] then mnemonic ins
    else
      Printf.sprintf "%s %s" (mnemonic ins)
        (String.concat ", " (List.map Operand.to_string ops))

let pp fmt ins = Format.pp_print_string fmt (to_string ins)

let equal (a : t) (b : t) = a = b
