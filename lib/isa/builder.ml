type t = {
  mutable rev_stmts : Program.stmt list;
  mutable count : int;        (* instructions emitted *)
  mutable active_tags : string list;
  mutable rev_tags : (int * string list) list;
  mutable fresh : int;
}

let create () =
  { rev_stmts = []; count = 0; active_tags = []; rev_tags = []; fresh = 0 }

let emit t ins =
  t.rev_stmts <- Program.Ins ins :: t.rev_stmts;
  if t.active_tags <> [] then t.rev_tags <- (t.count, t.active_tags) :: t.rev_tags;
  t.count <- t.count + 1

let emit_all t = List.iter (emit t)

let label t l = t.rev_stmts <- Program.Lbl l :: t.rev_stmts

let fresh_label t stem =
  let l = Printf.sprintf "%s__%d" stem t.fresh in
  t.fresh <- t.fresh + 1;
  l

let with_tag t tag f =
  let saved = t.active_tags in
  t.active_tags <- tag :: saved;
  Fun.protect ~finally:(fun () -> t.active_tags <- saved) f

let mark_attack t f = with_tag t Program.attack_tag f

let position t = t.count

let to_program ?base ~name t =
  Program.assemble ?base ~tags:(List.rev t.rev_tags) ~name
    (List.rev t.rev_stmts)
