(** Instruction normalization (§III-B1 of the paper).

    To compare instruction sequences across compilers and register
    allocations, operands are abstracted with three rules:
    immediates → ["imm"], memory references → ["mem"], registers → ["reg"].
    E.g. [mov -0x18(rbp), rax] normalizes to ["mov mem,reg"]. *)

val operand : Operand.t -> string
(** ["imm"], ["reg"] or ["mem"]. *)

val instr : Instr.t -> string
(** Normalized token of one instruction, e.g. ["mov mem,reg"].  Branch
    targets are dropped ([jmp], [je], ...), matching the paper's rules. *)

val sequence : Instr.t list -> string array
(** Normalized token per instruction, for Levenshtein comparison. *)
