(* Layout:
     magic "SCAB1"
     base        : u32
     name        : str16        (length-prefixed, u16)
     label count : u16
     labels      : (u32 index, str16 name)*
     instr count : u32
     instrs      : (opcode u8, operands)*

   Operands are tagged u8s; memory operands carry flag bits for the optional
   base/index registers.  Branch targets reference the label table by u16. *)

let magic = "SCAB1"

(* ---- writer ----------------------------------------------------------------- *)

let w_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

let w_u16 buf v =
  w_u8 buf v;
  w_u8 buf (v lsr 8)

let w_u32 buf v =
  w_u16 buf v;
  w_u16 buf (v lsr 16)

(* sign + magnitude: OCaml's 63-bit ints make raw two's-complement
   reassembly through shifts hazardous *)
let w_i64 buf v =
  w_u8 buf (if v < 0 then 1 else 0);
  let m = abs v in
  for k = 0 to 7 do
    w_u8 buf ((m lsr (8 * k)) land 0xFF)
  done

let w_str16 buf s =
  if String.length s > 0xFFFF then failwith "Binary: string too long";
  w_u16 buf (String.length s);
  Buffer.add_string buf s

let w_reg buf r = w_u8 buf (Reg.index r)

let w_operand buf = function
  | Operand.Imm v ->
    w_u8 buf 0;
    w_i64 buf v
  | Operand.Reg r ->
    w_u8 buf 1;
    w_reg buf r
  | Operand.Mem m ->
    w_u8 buf 2;
    let flags =
      (if Option.is_some m.Operand.base then 1 else 0)
      lor if Option.is_some m.Operand.index then 2 else 0
    in
    w_u8 buf flags;
    (match m.Operand.base with Some r -> w_reg buf r | None -> ());
    (match m.Operand.index with Some r -> w_reg buf r | None -> ());
    w_i64 buf m.Operand.scale;
    w_i64 buf m.Operand.disp

let cond_code = function
  | Instr.Eq -> 0 | Instr.Ne -> 1 | Instr.Lt -> 2 | Instr.Le -> 3
  | Instr.Gt -> 4 | Instr.Ge -> 5 | Instr.Ult -> 6 | Instr.Uge -> 7

let cond_of_code = function
  | 0 -> Instr.Eq | 1 -> Instr.Ne | 2 -> Instr.Lt | 3 -> Instr.Le
  | 4 -> Instr.Gt | 5 -> Instr.Ge | 6 -> Instr.Ult | 7 -> Instr.Uge
  | c -> failwith (Printf.sprintf "Binary: bad condition code %d" c)

let encode prog =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  w_u32 buf (Program.base prog);
  w_str16 buf (Program.name prog);
  let labels = Program.labels prog in
  let label_id =
    let tbl = Hashtbl.create 16 in
    List.iteri (fun i (l, _) -> Hashtbl.replace tbl l i) labels;
    fun l ->
      match Hashtbl.find_opt tbl l with
      | Some i -> i
      | None -> failwith ("Binary: unbound label " ^ l)
  in
  w_u16 buf (List.length labels);
  List.iter
    (fun (l, idx) ->
      w_u32 buf idx;
      w_str16 buf l)
    labels;
  w_u32 buf (Program.length prog);
  let w_target l = w_u16 buf (label_id l) in
  Array.iter
    (fun ins ->
      match ins with
      | Instr.Mov (a, b) -> w_u8 buf 0; w_operand buf a; w_operand buf b
      | Instr.Lea (r, m) -> w_u8 buf 1; w_reg buf r; w_operand buf m
      | Instr.Add (a, b) -> w_u8 buf 2; w_operand buf a; w_operand buf b
      | Instr.Sub (a, b) -> w_u8 buf 3; w_operand buf a; w_operand buf b
      | Instr.Imul (a, b) -> w_u8 buf 4; w_operand buf a; w_operand buf b
      | Instr.Xor (a, b) -> w_u8 buf 5; w_operand buf a; w_operand buf b
      | Instr.And (a, b) -> w_u8 buf 6; w_operand buf a; w_operand buf b
      | Instr.Or (a, b) -> w_u8 buf 7; w_operand buf a; w_operand buf b
      | Instr.Shl (a, k) -> w_u8 buf 8; w_operand buf a; w_u8 buf k
      | Instr.Shr (a, k) -> w_u8 buf 9; w_operand buf a; w_u8 buf k
      | Instr.Inc a -> w_u8 buf 10; w_operand buf a
      | Instr.Dec a -> w_u8 buf 11; w_operand buf a
      | Instr.Cmp (a, b) -> w_u8 buf 12; w_operand buf a; w_operand buf b
      | Instr.Test (a, b) -> w_u8 buf 13; w_operand buf a; w_operand buf b
      | Instr.Jmp l -> w_u8 buf 14; w_target l
      | Instr.Jcc (c, l) -> w_u8 buf 15; w_u8 buf (cond_code c); w_target l
      | Instr.Call l -> w_u8 buf 16; w_target l
      | Instr.Ret -> w_u8 buf 17
      | Instr.Push a -> w_u8 buf 18; w_operand buf a
      | Instr.Pop r -> w_u8 buf 19; w_reg buf r
      | Instr.Clflush a -> w_u8 buf 20; w_operand buf a
      | Instr.Prefetch a -> w_u8 buf 21; w_operand buf a
      | Instr.Mfence -> w_u8 buf 22
      | Instr.Lfence -> w_u8 buf 23
      | Instr.Cpuid -> w_u8 buf 24
      | Instr.Rdtsc -> w_u8 buf 25
      | Instr.Rdtscp -> w_u8 buf 26
      | Instr.Nop -> w_u8 buf 27
      | Instr.Halt -> w_u8 buf 28)
    (Program.code prog);
  Buffer.contents buf

(* ---- reader ------------------------------------------------------------------ *)

type cursor = { data : string; mutable pos : int }

let r_u8 c =
  if c.pos >= String.length c.data then failwith "Binary: truncated";
  let v = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  v

let r_u16 c =
  let lo = r_u8 c in
  lo lor (r_u8 c lsl 8)

let r_u32 c =
  let lo = r_u16 c in
  lo lor (r_u16 c lsl 16)

let r_i64 c =
  let sign = r_u8 c in
  let v = ref 0 in
  for k = 0 to 7 do
    v := !v lor (r_u8 c lsl (8 * k))
  done;
  if sign = 1 then - !v else !v

let r_str16 c =
  let n = r_u16 c in
  if c.pos + n > String.length c.data then failwith "Binary: truncated string";
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

let r_reg c =
  let i = r_u8 c in
  if i >= Reg.count then failwith "Binary: bad register";
  Reg.of_index i

let r_operand c =
  match r_u8 c with
  | 0 -> Operand.Imm (r_i64 c)
  | 1 -> Operand.Reg (r_reg c)
  | 2 ->
    let flags = r_u8 c in
    let base = if flags land 1 <> 0 then Some (r_reg c) else None in
    let index = if flags land 2 <> 0 then Some (r_reg c) else None in
    let scale = r_i64 c in
    let disp = r_i64 c in
    Operand.Mem { Operand.base; index; scale; disp }
  | k -> failwith (Printf.sprintf "Binary: bad operand tag %d" k)

let decode data =
  let c = { data; pos = 0 } in
  let m = String.sub data 0 (min (String.length magic) (String.length data)) in
  if m <> magic then failwith "Binary: bad magic";
  c.pos <- String.length magic;
  let base = r_u32 c in
  let name = r_str16 c in
  let n_labels = r_u16 c in
  let labels = Array.init n_labels (fun _ ->
      let idx = r_u32 c in
      let l = r_str16 c in
      (l, idx))
  in
  let label_name i =
    if i >= n_labels then failwith "Binary: bad label reference";
    fst labels.(i)
  in
  let n_instrs = r_u32 c in
  let r_target () = label_name (r_u16 c) in
  let instrs =
    Array.init n_instrs (fun _ ->
        match r_u8 c with
        | 0 -> let a = r_operand c in Instr.Mov (a, r_operand c)
        | 1 -> let r = r_reg c in Instr.Lea (r, r_operand c)
        | 2 -> let a = r_operand c in Instr.Add (a, r_operand c)
        | 3 -> let a = r_operand c in Instr.Sub (a, r_operand c)
        | 4 -> let a = r_operand c in Instr.Imul (a, r_operand c)
        | 5 -> let a = r_operand c in Instr.Xor (a, r_operand c)
        | 6 -> let a = r_operand c in Instr.And (a, r_operand c)
        | 7 -> let a = r_operand c in Instr.Or (a, r_operand c)
        | 8 -> let a = r_operand c in Instr.Shl (a, r_u8 c)
        | 9 -> let a = r_operand c in Instr.Shr (a, r_u8 c)
        | 10 -> Instr.Inc (r_operand c)
        | 11 -> Instr.Dec (r_operand c)
        | 12 -> let a = r_operand c in Instr.Cmp (a, r_operand c)
        | 13 -> let a = r_operand c in Instr.Test (a, r_operand c)
        | 14 -> Instr.Jmp (r_target ())
        | 15 -> let cc = cond_of_code (r_u8 c) in Instr.Jcc (cc, r_target ())
        | 16 -> Instr.Call (r_target ())
        | 17 -> Instr.Ret
        | 18 -> Instr.Push (r_operand c)
        | 19 -> Instr.Pop (r_reg c)
        | 20 -> Instr.Clflush (r_operand c)
        | 21 -> Instr.Prefetch (r_operand c)
        | 22 -> Instr.Mfence
        | 23 -> Instr.Lfence
        | 24 -> Instr.Cpuid
        | 25 -> Instr.Rdtsc
        | 26 -> Instr.Rdtscp
        | 27 -> Instr.Nop
        | 28 -> Instr.Halt
        | op -> failwith (Printf.sprintf "Binary: unknown opcode %d" op))
  in
  (* reassemble: interleave label statements at their indices *)
  let labels_at = Hashtbl.create 16 in
  Array.iter
    (fun (l, idx) ->
      Hashtbl.replace labels_at idx
        (l :: Option.value ~default:[] (Hashtbl.find_opt labels_at idx)))
    labels;
  let stmts = ref [] in
  for i = n_instrs - 1 downto 0 do
    stmts := Program.Ins instrs.(i) :: !stmts;
    match Hashtbl.find_opt labels_at i with
    | Some ls -> stmts := List.map (fun l -> Program.Lbl l) ls @ !stmts
    | None -> ()
  done;
  Program.assemble ~base ~name !stmts

let write_file ~path prog =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (encode prog))

let read_file ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> decode (really_input_string ic (in_channel_length ic)))
